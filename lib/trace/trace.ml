(** Graftscope: the event collector.

    A domain-local sink records typed events from every instrumented
    layer — kernel hooks, the graft manager, both VM dispatch loops,
    and the simulated clock. Two states:

    - [Null] (the default): every record operation is one load and one
      branch on a value that never changes between experiments, so the
      disabled tracer is branch-predicted away (ablation A8 measures
      this as zero within noise);
    - [Ring r]: events go into a preallocated ring of mutable slots.
      The hot path mutates slot fields in place and timestamps with
      {!Graft_util.Timer.now_ns_int}, so recording allocates nothing;
      when the ring is full the oldest events are overwritten and
      counted in {!dropped}.

    Span timing costs two clock reads, which is real money next to a
    sub-microsecond graft operation, so high-frequency sites (VM
    entries, manager invocations, map helper calls) use {!hot_begin}:
    a sampled begin that records every [sample]-th occurrence and
    skips the rest for the price of one increment and one mask.
    Low-frequency sites (faults, lifecycle transitions, filter pushes,
    segment flushes) record unconditionally via
    {!span_begin}/{!instant}/{!counter}.

    {b Graftlens: causal ids and tail-based retention.} A serving loop
    can declare the operation it is about to execute with
    {!op_begin}[ tid]: until the matching {!op_end}, every event
    recorded on this domain — whatever layer records it — carries
    [tid], so all spans an op touches share its id without any layer
    threading identifiers explicitly. While an op is open, events land
    in a pending scratch buffer; {!op_end}[ ~retain] then either
    commits the whole set to the ring (the op breached its latency
    threshold or faulted — tail-based retention) or only the events
    the 1-in-[sample] policy would have kept anyway, and stamps a
    retention-marker instant carrying the id. Rings can also run on a
    {e logical} clock ([enable ~logical:true]): timestamps become a
    per-ring counter, making ring contents — and every export — a
    pure function of the recorded operations, which is what lets the
    flight recorder promise byte-identical bundles for one (seed,
    config). *)

(** One trace track per instrumented subsystem; the Chrome exporter
    renders each as its own named thread. *)
type track =
  | Vmsys  (** eviction hook dispatch, page faults *)
  | Streams  (** per-filter push/flush *)
  | Logdisk  (** policy runs, segment flushes *)
  | Upcall  (** protection-boundary crossings *)
  | Manager  (** graft lifecycle and metered invocations *)
  | Vm_stack  (** stack VM entries (both dispatch tiers) *)
  | Vm_reg  (** register VM entries *)
  | Clock  (** simulated-time charges *)
  | App  (** workload-level marks (ablation A8, CLI scenarios) *)
  | Map  (** graft-map helper calls (lookup/update/delete) *)

let ntracks = 10

let track_index = function
  | Vmsys -> 0
  | Streams -> 1
  | Logdisk -> 2
  | Upcall -> 3
  | Manager -> 4
  | Vm_stack -> 5
  | Vm_reg -> 6
  | Clock -> 7
  | App -> 8
  | Map -> 9

let tracks =
  [|
    Vmsys; Streams; Logdisk; Upcall; Manager; Vm_stack; Vm_reg; Clock; App;
    Map;
  |]

let track_name = function
  | Vmsys -> "vmsys"
  | Streams -> "streams"
  | Logdisk -> "logdisk"
  | Upcall -> "upcall"
  | Manager -> "manager"
  | Vm_stack -> "stackvm"
  | Vm_reg -> "regvm"
  | Clock -> "simclock"
  | App -> "workload"
  | Map -> "graftmap"

type kind = Span | Instant | Counter

(* All-int slot (plus an immutable name pointer): writing one never
   allocates. [s_dur] is the duration for spans, -1 for instants, and
   the sampled value for counters. [s_tid] is the causal trace id of
   the op that recorded the event, 0 when none was open. *)
type slot = {
  mutable s_ts : int;
  mutable s_dur : int;
  mutable s_track : int;
  mutable s_kind : int;  (** 0 span, 1 instant, 2 counter *)
  mutable s_name : string;
  mutable s_arg : int;
  mutable s_tid : int;
}

(* Events recorded while an op is open are parked here until the
   retention decision; sized for one op's worth of spans, not a
   ring's. Overflow is counted, never reallocated. *)
let pending_capacity = 256

type ring = {
  slots : slot array;
  capacity : int;
  sample_mask : int;  (** hot-span period - 1; period is a power of 2 *)
  logical : bool;  (** deterministic per-ring clock instead of wall ns *)
  mutable lclock : int;  (** logical clock value (when [logical]) *)
  mutable next : int;  (** write cursor *)
  mutable total : int;  (** events ever written (drop-oldest counter) *)
  mutable tick : int;  (** hot-span sampling counter *)
  mutable cur_tid : int;  (** ambient causal id; 0 = none *)
  mutable op_open : bool;
  pend : slot array;
  pend_keep : bool array;  (** sampled-in flag per pending slot *)
  mutable pend_n : int;
  mutable spilled : int;  (** pending-overflow events discarded *)
  mutable retained : int;  (** ops committed in full by {!op_end} *)
}

type sink = Null | Ring of ring

(* The sink is domain-local: each domain enables (and owns) its own
   ring, so hot-path recording never synchronises — the same striping
   real per-CPU trace buffers use. [DLS.get] on an already-initialised
   key is an array load off the domain structure, so the disabled cost
   stays one load and one branch. The merge story lives upstream:
   sharded serve snapshots sum each domain's {!dropped} count and
   publish per-domain gauges. *)
let sink_key = Domain.DLS.new_key (fun () -> Null)
let get_sink () = Domain.DLS.get sink_key
let set_sink s = Domain.DLS.set sink_key s

(** Token returned by a skipped or disabled span begin. *)
let nil_token = min_int

let enabled () = match get_sink () with Null -> false | Ring _ -> true

let rec pow2_at_least n acc =
  if acc >= n then acc else pow2_at_least n (acc * 2)

let fresh_slot _ =
  { s_ts = 0; s_dur = 0; s_track = 0; s_kind = 0; s_name = ""; s_arg = 0;
    s_tid = 0 }

let enable ?(capacity = 65536) ?(sample = 32) ?(logical = false) () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity <= 0";
  if sample <= 0 then invalid_arg "Trace.enable: sample <= 0";
  set_sink
    (Ring
      {
        slots = Array.init capacity fresh_slot;
        capacity;
        sample_mask = pow2_at_least sample 1 - 1;
        logical;
        lclock = 0;
        next = 0;
        total = 0;
        tick = 0;
        cur_tid = 0;
        op_open = false;
        pend = Array.init pending_capacity fresh_slot;
        pend_keep = Array.make pending_capacity false;
        pend_n = 0;
        spilled = 0;
        retained = 0;
      })

let disable () = set_sink Null

let clear () =
  match get_sink () with
  | Null -> ()
  | Ring r ->
      r.next <- 0;
      r.total <- 0;
      r.tick <- 0;
      r.lclock <- 0;
      r.cur_tid <- 0;
      r.op_open <- false;
      r.pend_n <- 0;
      r.spilled <- 0;
      r.retained <- 0

let dropped () =
  match get_sink () with Null -> 0 | Ring r -> max 0 (r.total - r.capacity)

(** Events ever written since enable/clear, including dropped ones. *)
let total_recorded () = match get_sink () with Null -> 0 | Ring r -> r.total

(** Ops committed in full by {!op_end} since enable/clear. *)
let retained_ops () =
  match get_sink () with Null -> 0 | Ring r -> r.retained

(** Events lost to pending-buffer overflow while an op was open. *)
let op_spilled () =
  match get_sink () with Null -> 0 | Ring r -> r.spilled

(** The causal id events currently record under (0 when no op is
    open). *)
let current_tid () =
  match get_sink () with Null -> 0 | Ring r -> r.cur_tid

(** Canonical rendering of a trace id — what OpenMetrics exemplars and
    Chrome [trace_id] args carry. *)
let id_string tid = Printf.sprintf "%08x" tid

(* Clock read: one increment under a logical ring, the wall clock
   otherwise. Logical durations count clock reads between begin and
   end — deterministic, which is the point. *)
let now r =
  if r.logical then begin
    let t = r.lclock + 1 in
    r.lclock <- t;
    t
  end
  else Graft_util.Timer.now_ns_int ()

(* Span tokens carry the timestamp in the upper bits and the
   sampled-in flag in bit 0, so a hot span recorded while an op is
   open (every one is, for the retention decision) still remembers
   whether the 1-in-[sample] policy would have kept it. Monotonic ns
   fit in 62 bits with room to spare. *)
let token ts keep = (ts lsl 1) lor (if keep then 1 else 0)

let commit r (p : slot) =
  let s = Array.unsafe_get r.slots r.next in
  s.s_ts <- p.s_ts;
  s.s_dur <- p.s_dur;
  s.s_track <- p.s_track;
  s.s_kind <- p.s_kind;
  s.s_name <- p.s_name;
  s.s_arg <- p.s_arg;
  s.s_tid <- p.s_tid;
  let n = r.next + 1 in
  r.next <- (if n = r.capacity then 0 else n);
  r.total <- r.total + 1

let write ?(keep = true) r ts dur track kind name arg =
  if r.op_open then begin
    if r.pend_n < pending_capacity then begin
      let s = Array.unsafe_get r.pend r.pend_n in
      s.s_ts <- ts;
      s.s_dur <- dur;
      s.s_track <- track_index track;
      s.s_kind <- kind;
      s.s_name <- name;
      s.s_arg <- arg;
      s.s_tid <- r.cur_tid;
      Array.unsafe_set r.pend_keep r.pend_n keep;
      r.pend_n <- r.pend_n + 1
    end
    else r.spilled <- r.spilled + 1
  end
  else begin
    let s = Array.unsafe_get r.slots r.next in
    s.s_ts <- ts;
    s.s_dur <- dur;
    s.s_track <- track_index track;
    s.s_kind <- kind;
    s.s_name <- name;
    s.s_arg <- arg;
    s.s_tid <- r.cur_tid;
    let n = r.next + 1 in
    r.next <- (if n = r.capacity then 0 else n);
    r.total <- r.total + 1
  end

let instant ?(arg = 0) track name =
  match get_sink () with
  | Null -> ()
  | Ring r -> write r (now r) (-1) track 1 name arg

let counter track name value =
  match get_sink () with
  | Null -> ()
  | Ring r -> write r (now r) value track 2 name 0

let span_begin () =
  match get_sink () with
  | Null -> nil_token
  | Ring r -> token (now r) true

let hot_begin () =
  match get_sink () with
  | Null -> nil_token
  | Ring r ->
      let t = r.tick in
      r.tick <- t + 1;
      let sampled = t land r.sample_mask = 0 in
      (* With an op open every hot span records (into pending, for the
         retention decision); the sampled bit decides whether it
         survives a non-retained op. *)
      if r.op_open then token (now r) sampled
      else if sampled then token (now r) true
      else nil_token

let span_end ?(arg = 0) track name tok =
  if tok <> nil_token then
    match get_sink () with
    | Null -> ()
    | Ring r ->
        let ts = tok asr 1 in
        write ~keep:(tok land 1 = 1) r ts (now r - ts) track 0 name arg

(* ------------------------------------------------------------------ *)
(* Graftlens op scoping.                                               *)
(* ------------------------------------------------------------------ *)

let op_flush r ~retain =
  r.op_open <- false;
  for i = 0 to r.pend_n - 1 do
    if retain || Array.unsafe_get r.pend_keep i then
      commit r (Array.unsafe_get r.pend i)
  done;
  r.pend_n <- 0

(** Open an op scope with causal id [tid] (nonzero). Until the
    matching {!op_end}, every event recorded on this domain carries
    [tid] and is parked pending the retention decision. A still-open
    scope is flushed as non-retained first — scopes never nest. *)
let op_begin tid =
  match get_sink () with
  | Null -> ()
  | Ring r ->
      if r.op_open then op_flush r ~retain:false;
      r.cur_tid <- tid;
      r.op_open <- true

(** Close the op scope. [retain = true] (the op faulted or breached
    its latency threshold) commits every pending event to the ring and
    stamps a retention-marker instant [name] (App track, [arg] —
    conventionally the op's latency — and the op's id); [retain =
    false] commits only the events the 1-in-[sample] policy kept.
    [name] must be preallocated, like every event name. *)
let op_end ?(arg = 0) ~retain name =
  match get_sink () with
  | Null -> ()
  | Ring r ->
      if r.op_open then begin
        op_flush r ~retain;
        if retain then begin
          r.retained <- r.retained + 1;
          (* After the flush [op_open] is false, so the marker lands in
             the ring directly — still stamped with the op's id. *)
          write r (now r) (-1) App 1 name arg
        end;
        r.cur_tid <- 0
      end

(* ------------------------------------------------------------------ *)
(* Introspection (exporters and tests; not a hot path).                *)
(* ------------------------------------------------------------------ *)

type event = {
  ts_ns : int;
  dur_ns : int;  (** spans only; -1 otherwise *)
  track : track;
  kind : kind;
  name : string;
  arg : int;  (** span/instant argument, or the counter value *)
  tid : int;  (** causal trace id; 0 = none *)
}

let kind_of_int = function 0 -> Span | 1 -> Instant | _ -> Counter

(** Recorded events, oldest first (record order — spans are recorded
    when they end). *)
let events () =
  match get_sink () with
  | Null -> [||]
  | Ring r ->
      let n = min r.total r.capacity in
      let start = if r.total <= r.capacity then 0 else r.next in
      Array.init n (fun i ->
          let s = r.slots.((start + i) mod r.capacity) in
          {
            ts_ns = s.s_ts;
            dur_ns = (if s.s_kind = 0 then s.s_dur else -1);
            track = tracks.(s.s_track);
            kind = kind_of_int s.s_kind;
            name = s.s_name;
            arg = (if s.s_kind = 2 then s.s_dur else s.s_arg);
            tid = s.s_tid;
          })
