(** Graftscope: the event collector.

    A domain-local sink records typed events from every instrumented
    layer — kernel hooks, the graft manager, both VM dispatch loops,
    and the simulated clock. Two states:

    - [Null] (the default): every record operation is one load and one
      branch on a value that never changes between experiments, so the
      disabled tracer is branch-predicted away (ablation A8 measures
      this as zero within noise);
    - [Ring r]: events go into a preallocated ring of mutable slots.
      The hot path mutates slot fields in place and timestamps with
      {!Graft_util.Timer.now_ns_int}, so recording allocates nothing;
      when the ring is full the oldest events are overwritten and
      counted in {!dropped}.

    Span timing costs two clock reads, which is real money next to a
    sub-microsecond graft operation, so high-frequency sites (VM
    entries, manager invocations) use {!hot_begin}: a sampled begin
    that records every [sample]-th occurrence and skips the rest for
    the price of one increment and one mask. Low-frequency sites
    (faults, lifecycle transitions, filter pushes, segment flushes)
    record unconditionally via {!span_begin}/{!instant}/{!counter}. *)

(** One trace track per instrumented subsystem; the Chrome exporter
    renders each as its own named thread. *)
type track =
  | Vmsys  (** eviction hook dispatch, page faults *)
  | Streams  (** per-filter push/flush *)
  | Logdisk  (** policy runs, segment flushes *)
  | Upcall  (** protection-boundary crossings *)
  | Manager  (** graft lifecycle and metered invocations *)
  | Vm_stack  (** stack VM entries (both dispatch tiers) *)
  | Vm_reg  (** register VM entries *)
  | Clock  (** simulated-time charges *)
  | App  (** workload-level marks (ablation A8, CLI scenarios) *)

let ntracks = 9

let track_index = function
  | Vmsys -> 0
  | Streams -> 1
  | Logdisk -> 2
  | Upcall -> 3
  | Manager -> 4
  | Vm_stack -> 5
  | Vm_reg -> 6
  | Clock -> 7
  | App -> 8

let tracks =
  [| Vmsys; Streams; Logdisk; Upcall; Manager; Vm_stack; Vm_reg; Clock; App |]

let track_name = function
  | Vmsys -> "vmsys"
  | Streams -> "streams"
  | Logdisk -> "logdisk"
  | Upcall -> "upcall"
  | Manager -> "manager"
  | Vm_stack -> "stackvm"
  | Vm_reg -> "regvm"
  | Clock -> "simclock"
  | App -> "workload"

type kind = Span | Instant | Counter

(* All-int slot (plus an immutable name pointer): writing one never
   allocates. [s_dur] is the duration for spans, -1 for instants, and
   the sampled value for counters. *)
type slot = {
  mutable s_ts : int;
  mutable s_dur : int;
  mutable s_track : int;
  mutable s_kind : int;  (** 0 span, 1 instant, 2 counter *)
  mutable s_name : string;
  mutable s_arg : int;
}

type ring = {
  slots : slot array;
  capacity : int;
  sample_mask : int;  (** hot-span period - 1; period is a power of 2 *)
  mutable next : int;  (** write cursor *)
  mutable total : int;  (** events ever written (drop-oldest counter) *)
  mutable tick : int;  (** hot-span sampling counter *)
}

type sink = Null | Ring of ring

(* The sink is domain-local: each domain enables (and owns) its own
   ring, so hot-path recording never synchronises — the same striping
   real per-CPU trace buffers use. [DLS.get] on an already-initialised
   key is an array load off the domain structure, so the disabled cost
   stays one load and one branch. The merge story lives upstream:
   sharded serve snapshots sum each domain's {!dropped} count and
   publish per-domain gauges. *)
let sink_key = Domain.DLS.new_key (fun () -> Null)
let get_sink () = Domain.DLS.get sink_key
let set_sink s = Domain.DLS.set sink_key s

(** Token returned by a skipped or disabled span begin. *)
let nil_token = min_int

let enabled () = match get_sink () with Null -> false | Ring _ -> true

let rec pow2_at_least n acc =
  if acc >= n then acc else pow2_at_least n (acc * 2)

let enable ?(capacity = 65536) ?(sample = 32) () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity <= 0";
  if sample <= 0 then invalid_arg "Trace.enable: sample <= 0";
  set_sink
    (Ring
      {
        slots =
          Array.init capacity (fun _ ->
              {
                s_ts = 0;
                s_dur = 0;
                s_track = 0;
                s_kind = 0;
                s_name = "";
                s_arg = 0;
              });
        capacity;
        sample_mask = pow2_at_least sample 1 - 1;
        next = 0;
        total = 0;
        tick = 0;
      })

let disable () = set_sink Null

let clear () =
  match get_sink () with
  | Null -> ()
  | Ring r ->
      r.next <- 0;
      r.total <- 0;
      r.tick <- 0

let dropped () =
  match get_sink () with Null -> 0 | Ring r -> max 0 (r.total - r.capacity)

(** Events ever written since enable/clear, including dropped ones. *)
let total_recorded () = match get_sink () with Null -> 0 | Ring r -> r.total

let write r ts dur track kind name arg =
  let s = Array.unsafe_get r.slots r.next in
  s.s_ts <- ts;
  s.s_dur <- dur;
  s.s_track <- track_index track;
  s.s_kind <- kind;
  s.s_name <- name;
  s.s_arg <- arg;
  let n = r.next + 1 in
  r.next <- (if n = r.capacity then 0 else n);
  r.total <- r.total + 1

let instant ?(arg = 0) track name =
  match get_sink () with
  | Null -> ()
  | Ring r -> write r (Graft_util.Timer.now_ns_int ()) (-1) track 1 name arg

let counter track name value =
  match get_sink () with
  | Null -> ()
  | Ring r -> write r (Graft_util.Timer.now_ns_int ()) value track 2 name 0

let span_begin () =
  match get_sink () with
  | Null -> nil_token
  | Ring _ -> Graft_util.Timer.now_ns_int ()

let hot_begin () =
  match get_sink () with
  | Null -> nil_token
  | Ring r ->
      let t = r.tick in
      r.tick <- t + 1;
      if t land r.sample_mask = 0 then Graft_util.Timer.now_ns_int ()
      else nil_token

let span_end ?(arg = 0) track name token =
  if token <> nil_token then
    match get_sink () with
    | Null -> ()
    | Ring r ->
        write r token (Graft_util.Timer.now_ns_int () - token) track 0 name arg

(* ------------------------------------------------------------------ *)
(* Introspection (exporters and tests; not a hot path).                *)
(* ------------------------------------------------------------------ *)

type event = {
  ts_ns : int;
  dur_ns : int;  (** spans only; -1 otherwise *)
  track : track;
  kind : kind;
  name : string;
  arg : int;  (** span/instant argument, or the counter value *)
}

let kind_of_int = function 0 -> Span | 1 -> Instant | _ -> Counter

(** Recorded events, oldest first (record order — spans are recorded
    when they end). *)
let events () =
  match get_sink () with
  | Null -> [||]
  | Ring r ->
      let n = min r.total r.capacity in
      let start = if r.total <= r.capacity then 0 else r.next in
      Array.init n (fun i ->
          let s = r.slots.((start + i) mod r.capacity) in
          {
            ts_ns = s.s_ts;
            dur_ns = (if s.s_kind = 0 then s.s_dur else -1);
            track = tracks.(s.s_track);
            kind = kind_of_int s.s_kind;
            name = s.s_name;
            arg = (if s.s_kind = 2 then s.s_dur else s.s_arg);
          })
