(** Exporters over the recorded event buffer.

    Three output shapes, all computed at reporting time so recording
    stays allocation-free:

    - {!chrome_json}: Chrome trace-event JSON (load in Perfetto or
      [chrome://tracing]) with one named thread per subsystem track;
    - {!folded}: folded-stacks text ([path count] lines, self-time in
      nanoseconds) for flamegraph tooling, nesting reconstructed per
      track from span intervals;
    - {!summary}/{!summary_json}: per-event counters and latency
      percentiles (from log2 histograms) as a {!Graft_util.Tablefmt}
      table or JSON. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ json_escape s ^ "\""

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON.                                            *)
(* ------------------------------------------------------------------ *)

(* Envelope keys spliced into a top-level object: [extra] is
   (key, rendered JSON value) pairs, e.g. {!Graft_report.Envelope.fields}. *)
let extra_members extra =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf ",%s:%s" (quote k) v) extra)

(** One Chrome process worth of events — a domain's ring. Sharded
    serve exports one per domain ([p_pid] = domain id + 1) so traces
    from [--domains N] don't interleave under a single process. *)
type process = {
  p_pid : int;
  p_name : string;
  p_events : Trace.event array;
  p_dropped : int;
}

(* Span/instant args: the integer payload, plus the causal trace id
   when the event was recorded inside a Graftlens op scope. *)
let args_json (e : Trace.event) =
  if e.Trace.tid = 0 then Printf.sprintf "{\"arg\":%d}" e.Trace.arg
  else
    Printf.sprintf "{\"arg\":%d,\"trace_id\":\"%s\"}" e.Trace.arg
      (Trace.id_string e.Trace.tid)

(** Chrome trace-event JSON over explicit (process, events) groups.
    Timestamps are microseconds relative to the earliest event across
    every group; each subsystem track becomes thread [track_index + 1]
    of its group's process. *)
let chrome_json_of ?(extra = []) processes =
  let t0 =
    List.fold_left
      (fun acc p ->
        Array.fold_left
          (fun acc (e : Trace.event) -> min acc e.Trace.ts_ns)
          acc p.p_events)
      max_int processes
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let us ns = float_of_int ns /. 1e3 in
  let nevents =
    List.fold_left (fun acc p -> acc + Array.length p.p_events) 0 processes
  in
  let buf = Buffer.create (4096 + (nevents * 96)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  List.iter
    (fun p ->
      add
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}"
           p.p_pid (quote p.p_name));
      let present = Array.make Trace.ntracks false in
      Array.iter
        (fun (e : Trace.event) ->
          present.(Trace.track_index e.Trace.track) <- true)
        p.p_events;
      Array.iteri
        (fun i pr ->
          if pr then
            add
              (Printf.sprintf
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}"
                 p.p_pid (i + 1)
                 (quote (Trace.track_name Trace.tracks.(i)))))
        present;
      Array.iter
        (fun (e : Trace.event) ->
          let tid = Trace.track_index e.Trace.track + 1 in
          let ts = us (e.Trace.ts_ns - t0) in
          match e.Trace.kind with
          | Trace.Span ->
              add
                (Printf.sprintf
                   "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}"
                   (quote e.Trace.name)
                   (quote (Trace.track_name e.Trace.track))
                   p.p_pid tid ts
                   (us e.Trace.dur_ns)
                   (args_json e))
          | Trace.Instant ->
              add
                (Printf.sprintf
                   "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"args\":%s}"
                   (quote e.Trace.name)
                   (quote (Trace.track_name e.Trace.track))
                   p.p_pid tid ts (args_json e))
          | Trace.Counter ->
              add
                (Printf.sprintf
                   "{\"name\":%s,\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"args\":{\"value\":%d}}"
                   (quote e.Trace.name) p.p_pid tid ts e.Trace.arg))
        p.p_events)
    processes;
  let dropped =
    List.fold_left (fun acc p -> acc + p.p_dropped) 0 processes
  in
  Buffer.add_string buf
    (Printf.sprintf
       "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":%d}%s}"
       dropped (extra_members extra));
  Buffer.contents buf

(** Chrome trace-event JSON over the current (calling domain's)
    buffer, as a single process [pid 1]. *)
let chrome_json ?(extra = []) () =
  chrome_json_of ~extra
    [
      {
        p_pid = 1;
        p_name = "graftkit";
        p_events = Trace.events ();
        p_dropped = Trace.dropped ();
      };
    ]

(* ------------------------------------------------------------------ *)
(* Folded stacks (flamegraph input).                                   *)
(* ------------------------------------------------------------------ *)

(** Folded-stacks text: one [track;parent;child self_ns] line per
    unique span path. Nesting is reconstructed per track from span
    intervals (a span contains every span that starts and ends inside
    it); values are self time, so flamegraph tooling sums children
    back in. *)
let folded () =
  let evs = Trace.events () in
  let acc = Hashtbl.create 64 in
  let emit path self =
    let prev = Option.value ~default:0 (Hashtbl.find_opt acc path) in
    Hashtbl.replace acc path (prev + max 0 self)
  in
  Array.iter
    (fun t ->
      let spans =
        Array.of_list
          (List.filter
             (fun (e : Trace.event) ->
               e.Trace.kind = Trace.Span && e.Trace.track = t)
             (Array.to_list evs))
      in
      Array.sort
        (fun (a : Trace.event) (b : Trace.event) ->
          if a.Trace.ts_ns <> b.Trace.ts_ns then
            compare a.Trace.ts_ns b.Trace.ts_ns
          else compare b.Trace.dur_ns a.Trace.dur_ns)
        spans;
      (* (end_ts, path, dur, child time) innermost first *)
      let stack = ref [] in
      let pop () =
        match !stack with
        | (_, path, dur, children) :: rest ->
            stack := rest;
            emit path (dur - children);
            (match rest with
            | (fin, p, d, c) :: rest' ->
                stack := (fin, p, d, c + dur) :: rest'
            | [] -> ())
        | [] -> ()
      in
      Array.iter
        (fun (e : Trace.event) ->
          let start = e.Trace.ts_ns in
          let fin = start + e.Trace.dur_ns in
          while
            match !stack with
            | (f, _, _, _) :: _ -> f <= start
            | [] -> false
          do
            pop ()
          done;
          let parent =
            match !stack with
            | (_, p, _, _) :: _ -> p
            | [] -> Trace.track_name t
          in
          stack := (fin, parent ^ ";" ^ e.Trace.name, e.Trace.dur_ns, 0) :: !stack)
        spans;
      while !stack <> [] do
        pop ()
      done)
    Trace.tracks;
  let lines =
    Hashtbl.fold (fun path self l -> (path, self) :: l) acc []
    |> List.sort compare
  in
  String.concat ""
    (List.map (fun (path, self) -> Printf.sprintf "%s %d\n" path self) lines)

(* ------------------------------------------------------------------ *)
(* Metrics summary.                                                    *)
(* ------------------------------------------------------------------ *)

type agg = {
  a_track : Trace.track;
  a_name : string;
  a_kind : Trace.kind;
  mutable a_count : int;
  mutable a_total : int;  (** span ns or counter-value sum *)
  mutable a_max : int;
  a_hist : Histo.t;  (** span durations *)
}

let aggregate () =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (e : Trace.event) ->
      let key = (Trace.track_index e.Trace.track, e.Trace.name, e.Trace.kind) in
      let a =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
            let a =
              {
                a_track = e.Trace.track;
                a_name = e.Trace.name;
                a_kind = e.Trace.kind;
                a_count = 0;
                a_total = 0;
                a_max = 0;
                a_hist = Histo.create ();
              }
            in
            Hashtbl.replace tbl key a;
            a
      in
      a.a_count <- a.a_count + 1;
      (match e.Trace.kind with
      | Trace.Span ->
          a.a_total <- a.a_total + e.Trace.dur_ns;
          a.a_max <- max a.a_max e.Trace.dur_ns;
          Histo.add a.a_hist e.Trace.dur_ns
      | Trace.Counter ->
          a.a_total <- a.a_total + e.Trace.arg;
          a.a_max <- max a.a_max e.Trace.arg
      | Trace.Instant -> ()))
    (Trace.events ());
  Hashtbl.fold (fun _ a l -> a :: l) tbl []
  |> List.sort (fun a b ->
         let ta = Trace.track_index a.a_track
         and tb = Trace.track_index b.a_track in
         if ta <> tb then compare ta tb else compare b.a_total a.a_total)

let kind_name = function
  | Trace.Span -> "span"
  | Trace.Instant -> "instant"
  | Trace.Counter -> "counter"

let pp_ns ns = Graft_util.Timer.pp_seconds (float_of_int ns /. 1e9)

(** Counter/latency summary rendered with {!Graft_util.Tablefmt}: one
    row per (track, event), with p50/p95 from the duration histogram
    for spans and value sums for counters. *)
let summary () =
  let t =
    Graft_util.Tablefmt.create
      [| "Track"; "Event"; "Kind"; "Count"; "Total"; "Mean"; "p50"; "p95"; "Max" |]
  in
  List.iter
    (fun a ->
      let timing =
        match a.a_kind with
        | Trace.Span ->
            [|
              pp_ns a.a_total;
              pp_ns (a.a_total / max 1 a.a_count);
              pp_ns (Histo.percentile a.a_hist 0.50);
              pp_ns (Histo.percentile a.a_hist 0.95);
              pp_ns a.a_max;
            |]
        | Trace.Counter ->
            [|
              string_of_int a.a_total;
              Printf.sprintf "%.1f" (float_of_int a.a_total /. float_of_int (max 1 a.a_count));
              "-";
              "-";
              string_of_int a.a_max;
            |]
        | Trace.Instant -> [| "-"; "-"; "-"; "-"; "-" |]
      in
      Graft_util.Tablefmt.add_row t
        (Array.append
           [|
             Trace.track_name a.a_track;
             a.a_name;
             kind_name a.a_kind;
             string_of_int a.a_count;
           |]
           timing))
    (aggregate ());
  Graft_util.Tablefmt.render t
  ^ Printf.sprintf "events recorded: %d  dropped: %d\n"
      (Array.length (Trace.events ()))
      (Trace.dropped ())

(** The same aggregation as JSON (ns-valued fields). *)
let summary_json ?(extra = []) () =
  let rows =
    List.map
      (fun a ->
        let base =
          Printf.sprintf
            "{\"track\":%s,\"event\":%s,\"kind\":%s,\"count\":%d"
            (quote (Trace.track_name a.a_track))
            (quote a.a_name)
            (quote (kind_name a.a_kind))
            a.a_count
        in
        match a.a_kind with
        | Trace.Span ->
            Printf.sprintf
              "%s,\"total_ns\":%d,\"mean_ns\":%d,\"p50_ns\":%d,\"p95_ns\":%d,\"max_ns\":%d}"
              base a.a_total
              (a.a_total / max 1 a.a_count)
              (Histo.percentile a.a_hist 0.50)
              (Histo.percentile a.a_hist 0.95)
              a.a_max
        | Trace.Counter ->
            Printf.sprintf "%s,\"sum\":%d,\"max\":%d}" base a.a_total a.a_max
        | Trace.Instant -> base ^ "}")
      (aggregate ())
  in
  Printf.sprintf "{\"dropped\":%d,\"events\":[%s]%s}\n" (Trace.dropped ())
    (String.concat "," rows) (extra_members extra)
