(** Evaluator for register-VM code.

    Besides the result it reports the number of instructions executed,
    which gives an interpreter-speed-independent measure of the SFI
    instrumentation overhead (the extra and/or/addi per store) used by
    the ablation benches. *)

open Graft_mem
open Graft_gel

let max_frames = 256

(* Graftmeter counters: the regvm tier's series in the shared
   graftkit_vm_* families (the stack tiers register the family help). *)
let m_sessions =
  Graft_metrics.domain_counter "graftkit_vm_sessions" [ ("tier", "regvm") ]

let m_fuel = Graft_metrics.domain_counter "graftkit_vm_fuel" [ ("tier", "regvm") ]

type outcome = { value : int; instructions : int }

type frame = { regs : int array; mutable ret_pc : int; mutable dst : int }

(** Preallocated register windows, reused across kernel-to-graft
    entries like a resident VM's. Safe because generated code writes
    every register before reading it (locals are initialized at
    declaration; r0 is never written and stays zero). *)
type session = {
  p : Program.t;
  frames : frame array;
  mutable prof : Graft_trace.Opprof.t option;
      (** when set, the dispatch loop counts every executed opcode *)
}

let create_session ?profile p =
  {
    p;
    frames =
      Array.init max_frames (fun _ ->
          { regs = Array.make Isa.nregs 0; ret_pc = -1; dst = 0 });
    prof = profile;
  }

let run_session (s : session) ~entry ~(args : int array) ~fuel :
    (outcome, [ `Fault of Fault.t | `Bad_entry of string ]) result =
  let p = s.p in
  match Program.find_func p entry with
  | None -> Error (`Bad_entry (Printf.sprintf "no function named %s" entry))
  | Some fidx when p.Program.funcs.(fidx).Program.nargs <> Array.length args
    ->
      Error
        (`Bad_entry
          (Printf.sprintf "%s expects %d arguments, given %d" entry
             p.Program.funcs.(fidx).Program.nargs (Array.length args)))
  | Some fidx -> (
      let code = p.Program.code in
      let cells = p.Program.cells in
      let ncells = Array.length cells in
      let frames = s.frames in
      let depth = ref 0 in
      let fuel0 = fuel in
      let fuel = ref fuel in
      let prof = s.prof in
      let icount = ref 0 in
      let new_frame ret_pc dst =
        if !depth >= max_frames then Fault.raise_fault Fault.Stack_overflow;
        let frame = frames.(!depth) in
        frame.ret_pc <- ret_pc;
        frame.dst <- dst;
        incr depth;
        frame.regs
      in
      let addr_check access a =
        if a < 0 || a >= ncells then
          Fault.raise_fault (Fault.Out_of_bounds { access; addr = a })
      in
      let tok = Graft_trace.Trace.hot_begin () in
      let outcome =
        try
          let regs = ref (new_frame (-1) 0) in
        Array.iteri (fun i v -> !regs.(Isa.reg_base + i) <- v) args;
        let pc = ref p.Program.funcs.(fidx).Program.entry in
        let result = ref 0 in
        let running = ref true in
        while !running do
          decr fuel;
          if !fuel < 0 then Fault.raise_fault Fault.Fuel_exhausted;
          incr icount;
          let r = !regs in
          let instr = Array.unsafe_get code !pc in
          incr pc;
          (* Every register instruction charges one fuel, so width is
             always 1 here. *)
          (match prof with
          | None -> ()
          | Some pr -> Graft_trace.Opprof.hit pr (Isa.index instr) 1);
          match instr with
          | Isa.Movi (rd, imm) -> r.(rd) <- imm
          | Isa.Mov (rd, rs) -> r.(rd) <- r.(rs)
          | Isa.Bin (kind, op, rd, rs1, rs2) ->
              r.(rd) <- Interp.arith kind op r.(rs1) r.(rs2)
          | Isa.Addi (rd, rs, imm) -> r.(rd) <- r.(rs) + imm
          | Isa.Andi (rd, rs, imm) -> r.(rd) <- r.(rs) land imm
          | Isa.Ori (rd, rs, imm) -> r.(rd) <- r.(rs) lor imm
          | Isa.Cmp (c, rd, rs1, rs2) ->
              r.(rd) <- Interp.compare_vals c r.(rs1) r.(rs2)
          | Isa.Un (Isa.Uneg Ir.Kint, rd, rs) -> r.(rd) <- -r.(rs)
          | Isa.Un (Isa.Uneg Ir.Kword, rd, rs) -> r.(rd) <- Wordops.neg r.(rs)
          | Isa.Un (Isa.Ubnot Ir.Kint, rd, rs) -> r.(rd) <- lnot r.(rs)
          | Isa.Un (Isa.Ubnot Ir.Kword, rd, rs) ->
              r.(rd) <- Wordops.bnot r.(rs)
          | Isa.Un (Isa.Unot, rd, rs) -> r.(rd) <- (if r.(rs) = 0 then 1 else 0)
          | Isa.Un (Isa.Umask, rd, rs) -> r.(rd) <- Wordops.of_int r.(rs)
          | Isa.Un (Isa.Utobool, rd, rs) ->
              r.(rd) <- (if r.(rs) = 0 then 0 else 1)
          | Isa.Ld (rd, rs, off) ->
              let a = r.(rs) + off in
              addr_check Fault.Read a;
              r.(rd) <- Array.unsafe_get cells a
          | Isa.St (rb, rs, off) ->
              let a = r.(rb) + off in
              addr_check Fault.Write a;
              Array.unsafe_set cells a r.(rs)
          | Isa.Br t -> pc := t
          | Isa.Brz (rs, t) -> if r.(rs) = 0 then pc := t
          | Isa.Brnz (rs, t) -> if r.(rs) <> 0 then pc := t
          | Isa.Call { f; dst; argbase; nargs } ->
              let callee = new_frame !pc dst in
              for i = 0 to nargs - 1 do
                callee.(Isa.reg_base + i) <- r.(argbase + i)
              done;
              regs := callee;
              pc := p.Program.funcs.(f).Program.entry
          | Isa.Callext { e; dst; argbase; nargs } ->
              let argv = Array.init nargs (fun i -> r.(argbase + i)) in
              r.(dst) <- p.Program.host.(e) argv
          | Isa.Ret rs ->
              let v = r.(rs) in
              decr depth;
              let finished = frames.(!depth) in
              if finished.ret_pc = -1 then begin
                result := v;
                running := false
              end
              else begin
                let caller = frames.(!depth - 1) in
                caller.regs.(finished.dst) <- v;
                regs := caller.regs;
                pc := finished.ret_pc
              end
          | Isa.Halt ->
              Fault.raise_fault (Fault.Illegal_instruction "halt")
        done;
          Ok { value = !result; instructions = !icount }
        with Fault.Fault f ->
          Graft_trace.Trace.instant Graft_trace.Trace.Vm_reg
            ("fault:" ^ Fault.class_name f);
          Error (`Fault f)
      in
      (match prof with
      | None -> ()
      | Some pr -> Graft_trace.Opprof.run_done pr ~fuel:(fuel0 - max 0 !fuel));
      Graft_metrics.inc (m_sessions ());
      Graft_metrics.inc (m_fuel ()) ~by:(fuel0 - max 0 !fuel);
      Graft_trace.Trace.span_end Graft_trace.Trace.Vm_reg "regvm.run" tok;
      outcome)

(** One-shot convenience; resident grafts should keep a session. *)
let run p ~entry ~args ~fuel = run_session (create_session p) ~entry ~args ~fuel
