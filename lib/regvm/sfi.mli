(** The software-fault-isolation rewriting pass (sandboxing), after
    Wahbe et al. [WAHBE93] as productized by Omniware [COLU95].

    Every store — and in [Full] mode every load — is rewritten to go
    through the dedicated sandbox register r1 via an
    [addi]/[andi]/[ori] masking sequence. Because the segment base is
    aligned to its power-of-two size, the and/or pair maps any address
    into the segment: a graft can at worst overwrite its own data, at a
    cost of three ALU instructions per store. Branch targets and
    function entries are remapped. *)

val is_pow2 : int -> bool

(** Treat an entire graft memory as one sandbox segment. Requires a
    power-of-two cell count; raises [Invalid_argument] otherwise. *)
val segment_of_memory : Graft_mem.Memory.t -> Program.segment

(** Instrument for the given protection level ([Unprotected] returns
    the program unchanged apart from the recorded level). Raises
    [Invalid_argument] for an unaligned or non-power-of-two segment.

    [~elide:true] runs the {!Flow} interval analysis first and leaves
    accesses unmasked when their effective address provably lies inside
    the segment (where the size-aligned and/or masking pair is the
    identity anyway), recording each elision and its proving interval
    in the program's [claims] manifest for {!Verify} to re-derive. *)
val instrument :
  ?elide:bool -> Program.t -> protection:Program.protection -> Program.t
