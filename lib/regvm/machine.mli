(** Evaluator for register-VM code.

    Besides the result it reports the number of instructions executed,
    giving an interpreter-speed-independent measure of the SFI
    instrumentation overhead for the ablation benches. Wild accesses
    that escape the physical cell array fault like a hardware MMU
    would; accesses inside it are unchecked (SFI masking, not checking,
    is the protection story). *)

val max_frames : int

type outcome = { value : int; instructions : int }

(** Preallocated register windows, reused across kernel-to-graft
    entries like a resident VM's. Single-threaded, not reentrant. *)
type session

(** [create_session ?profile p] — when [profile] is given, the
    dispatch loop counts every executed opcode and each entry's fuel
    into it (see {!Graft_trace.Opprof}). *)
val create_session : ?profile:Graft_trace.Opprof.t -> Program.t -> session

val run_session :
  session ->
  entry:string ->
  args:int array ->
  fuel:int ->
  (outcome, [ `Fault of Graft_mem.Fault.t | `Bad_entry of string ]) result

(** One-shot convenience; resident grafts should keep a session. *)
val run :
  Program.t ->
  entry:string ->
  args:int array ->
  fuel:int ->
  (outcome, [ `Fault of Graft_mem.Fault.t | `Bad_entry of string ]) result
