(** Linear-time load-time verifier for sandboxed register code — the
    "linear-time algorithm [that] can be used to guarantee that all
    memory references in a piece of object code have been correctly
    sandboxed" from the paper's section 4.2.

    Enforced for [Write_jump] protection (plus loads for [Full]): every
    store addresses through the dedicated sandbox register r1 at offset
    0; r1 is written only by the canonical [andi]/[ori] masking pair
    with the segment's exact constants; no branch lands inside a
    masking sequence; r0 is never written; all branch and call targets
    are in range. One pass, O(1) work per instruction. *)

val verify : ?bounded:bool -> Program.t -> (unit, string) result
(** [verify ?bounded p] checks [p]. Externs named like typed helpers
    ({!Graft_analysis.Helpers}) must match the table's arity. With
    [bounded:true] (Graftgate mode) every backward branch must be the
    backedge of a canonical counted loop: the verifier re-derives the
    init/test/step windows, requires the step to be the loop's only
    counter write, forbids entering the window except through its
    initialiser, and recomputes a finite trip count — conditional or
    non-conforming backward branches are load errors. *)
