(** Register-interval dataflow over SFI register code: the shared
    evidence base for mask elision. {!Sfi.instrument} consults it to
    find accesses whose effective address provably stays inside the
    sandbox segment; {!Verify} reruns it over the instrumented code to
    independently re-derive every recorded elision, so the analysis
    itself never joins the trusted base. Deliberately path-insensitive
    (no branch refinement); deterministic round-robin iteration with
    widening after a fixed number of exact sweeps. *)

(** [analyze code funcs] returns, for every pc, the register intervals
    holding just before that instruction executes; [None] marks
    unreachable pcs. r0 is pinned to [0,0] (the verifier refuses writes
    to it); loads and call results are ⊤. *)
val analyze :
  Isa.instr array ->
  Program.funcdesc array ->
  Graft_analysis.Interval.t array option array

(** Effective-address interval of [mem\[r.(rb) + off\]] at [pc] given
    the analysis result; [Interval.bot] if the pc is unreachable. *)
val address :
  Graft_analysis.Interval.t array option array ->
  int ->
  int ->
  int ->
  Graft_analysis.Interval.t
