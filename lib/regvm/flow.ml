(** Register-interval dataflow over SFI register code.

    A small forward abstract interpretation that assigns every program
    point an interval per register ({!Graft_analysis.Interval}). It is
    the evidence base for mask elision: {!Sfi.instrument} uses it to
    find stores whose effective address is provably inside the sandbox
    segment (so the masking triple is dead weight), and {!Verify} reruns
    the same analysis over the instrumented code to re-derive — and
    thereby admit or refuse — each recorded elision. Because both sides
    call this one function, the compiler holds no special authority: a
    claim the verifier cannot reproduce is rejected at load time.

    The analysis is deliberately blunt where bluntness is cheap:
    - no branch refinement — both edges of [brz]/[brnz] get the same
      state (the profitable elisions here are constant global slots and
      masked indices, which need no path sensitivity);
    - loads produce ⊤, calls clobber only their destination register
      (the machine gives every activation its own register frame);
    - r0 starts at [0,0] and stays there, since the verifier's
      register-discipline pass refuses any write to it.

    Iteration is round-robin sweeps to a fixpoint, switching from join
    to widening after {!max_exact_sweeps} sweeps. Sweeping in code
    order (rather than a worklist) makes the result a deterministic
    function of the instruction array, so the instrumenter and the
    verifier — analyzing code that differs only by straight-line
    masking triples — converge to the same intervals for the registers
    elisions depend on. *)

module I = Graft_analysis.Interval

(** Sweeps allowed to converge exactly before widening kicks in.
    Counted loops shorter than this many iterations get precise bounds;
    anything slower is widened to ±∞ on the changing side. *)
let max_exact_sweeps = 60

let entry_state () =
  let s = Array.make Isa.nregs I.top in
  s.(Isa.reg_zero) <- I.const 0;
  s

(** [analyze code funcs] returns the in-state for every pc: the
    register intervals that hold just before the instruction executes.
    [None] marks pcs the analysis never reached (dead code). *)
let analyze (code : Isa.instr array) (funcs : Program.funcdesc array) :
    I.t array option array =
  let n = Array.length code in
  let states : I.t array option array = Array.make n None in
  let changed = ref true in
  let sweeps = ref 0 in
  let merge pc (st : I.t array) =
    if pc >= 0 && pc < n then
      match states.(pc) with
      | None ->
          states.(pc) <- Some (Array.copy st);
          changed := true
      | Some old ->
          for r = 0 to Isa.nregs - 1 do
            let j = I.join old.(r) st.(r) in
            let j = if !sweeps > max_exact_sweeps then I.widen old.(r) j else j in
            if not (I.equal j old.(r)) then begin
              old.(r) <- j;
              changed := true
            end
          done
  in
  Array.iter
    (fun (f : Program.funcdesc) -> merge f.Program.entry (entry_state ()))
    funcs;
  while !changed do
    changed := false;
    incr sweeps;
    for pc = 0 to n - 1 do
      match states.(pc) with
      | None -> ()
      | Some cur ->
          let st = Array.copy cur in
          let set rd iv = if rd <> Isa.reg_zero then st.(rd) <- iv in
          let next () = merge (pc + 1) st in
          (match code.(pc) with
          | Isa.Movi (rd, imm) ->
              set rd (I.const imm);
              next ()
          | Isa.Mov (rd, rs) ->
              set rd st.(rs);
              next ()
          | Isa.Bin (k, op, rd, rs1, rs2) ->
              set rd (I.arith k op st.(rs1) st.(rs2));
              next ()
          | Isa.Addi (rd, rs, imm) ->
              set rd (I.add st.(rs) (I.const imm));
              next ()
          | Isa.Andi (rd, rs, imm) ->
              set rd (I.arith Graft_gel.Ir.Kint Graft_gel.Ir.Band st.(rs)
                        (I.const imm));
              next ()
          | Isa.Ori (rd, rs, imm) ->
              set rd (I.arith Graft_gel.Ir.Kint Graft_gel.Ir.Bor st.(rs)
                        (I.const imm));
              next ()
          | Isa.Cmp (_, rd, _, _) ->
              set rd (I.range 0 1);
              next ()
          | Isa.Un (u, rd, rs) ->
              let iv =
                match u with
                | Isa.Uneg k -> I.neg_k k st.(rs)
                | Isa.Ubnot k -> I.bnot k st.(rs)
                | Isa.Unot | Isa.Utobool -> I.range 0 1
                | Isa.Umask -> I.to_word st.(rs)
              in
              set rd iv;
              next ()
          | Isa.Ld (rd, _, _) ->
              set rd I.top;
              next ()
          | Isa.St _ -> next ()
          | Isa.Br t -> merge t st
          | Isa.Brz (_, t) | Isa.Brnz (_, t) ->
              merge t st;
              next ()
          | Isa.Call { dst; _ } | Isa.Callext { dst; _ } ->
              set dst I.top;
              next ()
          | Isa.Ret _ | Isa.Halt -> ())
    done
  done;
  states

(** Effective-address interval of a memory access [mem\[r.(rb) + off\]]
    given the in-state at its pc; [I.bot] if the pc is unreachable. *)
let address (states : I.t array option array) pc rb off =
  if pc < 0 || pc >= Array.length states then I.bot
  else
    match states.(pc) with
    | None -> I.bot
    | Some st -> I.add st.(rb) (I.const off)
