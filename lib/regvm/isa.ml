(** Register ISA for the software-fault-isolation substrate, modelled on
    the Omniware/Wahbe design the paper measures: a RISC-like virtual
    machine whose object code is rewritten by an SFI pass ([Sfi]) and
    checked by a linear-time load-time verifier ([Verify]).

    Register conventions:
    - r0 is hard-wired zero (never written by generated code),
    - r1 is the dedicated sandbox address register; only the masking
      sequence emitted by the SFI pass may write it,
    - r2 is the SFI scratch register,
    - r4 and up hold locals, then expression temporaries.

    There are no computed jumps: branch and call targets are immediates
    and the return stack lives in the machine, not in graft-writable
    memory, so control-flow integrity is structural and the verifier
    only needs to range-check targets. *)

type reg = int

let reg_zero = 0
let reg_sandbox = 1
let reg_scratch = 2
(* first general-purpose register *)
let reg_base = 4
let nregs = 128

type unop =
  | Uneg of Graft_gel.Ir.kind
  | Ubnot of Graft_gel.Ir.kind
  | Unot  (** boolean negation *)
  | Umask  (** cast to word: mask to 32 bits *)
  | Utobool

type instr =
  | Movi of reg * int
  | Mov of reg * reg
  | Bin of Graft_gel.Ir.kind * Graft_gel.Ir.arith * reg * reg * reg
      (** rd <- rs1 op rs2 *)
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Cmp of Graft_gel.Ir.cmp * reg * reg * reg  (** rd <- rs1 cmp rs2 (0/1) *)
  | Un of unop * reg * reg
  | Ld of reg * reg * int  (** rd <- mem\[rs + off\] *)
  | St of reg * reg * int  (** mem\[rb + off\] <- rs *)
  | Br of int
  | Brz of reg * int
  | Brnz of reg * int
  | Call of { f : int; dst : reg; argbase : reg; nargs : int }
  | Callext of { e : int; dst : reg; argbase : reg; nargs : int }
  | Ret of reg
  | Halt

let kind_tag = function Graft_gel.Ir.Kint -> "" | Graft_gel.Ir.Kword -> "w"

let arith_name (op : Graft_gel.Ir.arith) =
  match op with
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Shl -> "shl" | Shr -> "shr" | Lshr -> "lshr"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor"

let cmp_name (c : Graft_gel.Ir.cmp) =
  match c with
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"

let to_string = function
  | Movi (rd, imm) -> Printf.sprintf "movi r%d, %d" rd imm
  | Mov (rd, rs) -> Printf.sprintf "mov r%d, r%d" rd rs
  | Bin (k, op, rd, rs1, rs2) ->
      Printf.sprintf "%s%s r%d, r%d, r%d" (arith_name op) (kind_tag k) rd rs1
        rs2
  | Addi (rd, rs, imm) -> Printf.sprintf "addi r%d, r%d, %d" rd rs imm
  | Andi (rd, rs, imm) -> Printf.sprintf "andi r%d, r%d, 0x%x" rd rs imm
  | Ori (rd, rs, imm) -> Printf.sprintf "ori r%d, r%d, 0x%x" rd rs imm
  | Cmp (c, rd, rs1, rs2) ->
      Printf.sprintf "s%s r%d, r%d, r%d" (cmp_name c) rd rs1 rs2
  | Un (Uneg k, rd, rs) -> Printf.sprintf "neg%s r%d, r%d" (kind_tag k) rd rs
  | Un (Ubnot k, rd, rs) -> Printf.sprintf "not%s r%d, r%d" (kind_tag k) rd rs
  | Un (Unot, rd, rs) -> Printf.sprintf "lnot r%d, r%d" rd rs
  | Un (Umask, rd, rs) -> Printf.sprintf "mask32 r%d, r%d" rd rs
  | Un (Utobool, rd, rs) -> Printf.sprintf "tobool r%d, r%d" rd rs
  | Ld (rd, rs, off) -> Printf.sprintf "ld r%d, [r%d+%d]" rd rs off
  | St (rb, rs, off) -> Printf.sprintf "st [r%d+%d], r%d" rb off rs
  | Br t -> Printf.sprintf "br %d" t
  | Brz (r, t) -> Printf.sprintf "brz r%d, %d" r t
  | Brnz (r, t) -> Printf.sprintf "brnz r%d, %d" r t
  | Call { f; dst; argbase; nargs } ->
      Printf.sprintf "call fn%d -> r%d (args r%d..%d)" f dst argbase
        (argbase + nargs - 1)
  | Callext { e; dst; argbase; nargs } ->
      Printf.sprintf "callext ext%d -> r%d (args r%d..%d)" e dst argbase
        (argbase + nargs - 1)
  | Ret r -> Printf.sprintf "ret r%d" r
  | Halt -> "halt"

(** Dense opcode-class index (operands ignored), for profiler counter
    arrays; indexes {!class_names}. *)
let index = function
  | Movi _ -> 0
  | Mov _ -> 1
  | Bin _ -> 2
  | Addi _ -> 3
  | Andi _ -> 4
  | Ori _ -> 5
  | Cmp _ -> 6
  | Un _ -> 7
  | Ld _ -> 8
  | St _ -> 9
  | Br _ -> 10
  | Brz _ -> 11
  | Brnz _ -> 12
  | Call _ -> 13
  | Callext _ -> 14
  | Ret _ -> 15
  | Halt -> 16

(** One display name per {!index} slot. *)
let class_names =
  [|
    "movi"; "mov"; "bin"; "addi"; "andi"; "ori"; "cmp"; "un"; "ld"; "st";
    "br"; "brz"; "brnz"; "call"; "callext"; "ret"; "halt";
  |]

(** Registers written by an instruction (for the verifier's dedicated-
    register discipline). *)
let writes = function
  | Movi (rd, _) | Mov (rd, _) | Bin (_, _, rd, _, _) | Addi (rd, _, _)
  | Andi (rd, _, _) | Ori (rd, _, _) | Cmp (_, rd, _, _) | Un (_, rd, _)
  | Ld (rd, _, _) ->
      [ rd ]
  | Call { dst; _ } | Callext { dst; _ } -> [ dst ]
  | St _ | Br _ | Brz _ | Brnz _ | Ret _ | Halt -> []
