(** The software-fault-isolation rewriting pass (sandboxing), after
    Wahbe et al. [WAHBE93] as productized by Omniware [COLU95].

    Every store — and in [Full] mode every load — is rewritten to go
    through the dedicated sandbox register r1:

    {v
        st [rb+off], rs          addi r2, rb, off
                          ==>    andi r1, r2, size-1
                                 ori  r1, r1, base
                                 st  [r1+0], rs
    v}

    Because [base] is aligned to the power-of-two [size], the and/or
    pair maps any address into the segment. A graft can therefore at
    worst overwrite its own data — the paper's definition of
    sandboxing — at a cost of three extra ALU instructions per store.

    The pass remaps all branch targets and function entry points. *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

(** Treat an entire graft memory as one sandbox segment. Requires a
    power-of-two cell count. *)
let segment_of_memory mem =
  let size = Graft_mem.Memory.size mem in
  if not (is_pow2 size) then
    invalid_arg "Sfi.segment_of_memory: memory size must be a power of two";
  { Program.base = 0; size }

module I = Graft_analysis.Interval

let instrument ?(elide = false) (p : Program.t)
    ~(protection : Program.protection) : Program.t =
  match protection with
  | Program.Unprotected -> { p with Program.protection; claims = [||] }
  | Program.Write_jump | Program.Full ->
      let seg = p.Program.segment in
      if not (is_pow2 seg.Program.size) then
        invalid_arg "Sfi.instrument: segment size must be a power of two";
      if seg.Program.base land (seg.Program.size - 1) <> 0 then
        invalid_arg "Sfi.instrument: segment base must be size-aligned";
      let mask = seg.Program.size - 1 in
      let base = seg.Program.base in
      let full = protection = Program.Full in
      (* Mask elision: an access whose effective address provably lies
         inside the segment behaves identically masked or not (for a
         size-aligned segment the and/or pair is the identity on
         in-segment addresses), so the triple is pure overhead. The
         interval each elision rests on is recorded in [claims] for the
         load-time verifier to re-derive. *)
      let flow =
        if elide then Flow.analyze p.Program.code p.Program.funcs else [||]
      in
      let seg_iv = I.range base (base + seg.Program.size - 1) in
      let provable i r off =
        elide
        &&
        let addr = Flow.address flow i r off in
        (not (I.is_bot addr)) && I.leq addr seg_iv
      in
      let expand i instr =
        match instr with
        | Isa.St (rb, _, off) -> if provable i rb off then 1 else 4
        | Isa.Ld (_, rs, off) when full -> if provable i rs off then 1 else 4
        | _ -> 1
      in
      let n = Array.length p.Program.code in
      (* Old index -> new index. *)
      let remap = Array.make (n + 1) 0 in
      let total = ref 0 in
      for i = 0 to n - 1 do
        remap.(i) <- !total;
        total := !total + expand i p.Program.code.(i)
      done;
      remap.(n) <- !total;
      let out = Array.make !total Isa.Halt in
      let pos = ref 0 in
      let claims_rev = ref [] in
      let put instr =
        out.(!pos) <- instr;
        incr pos
      in
      let sandbox rb off =
        put (Isa.Addi (Isa.reg_scratch, rb, off));
        put (Isa.Andi (Isa.reg_sandbox, Isa.reg_scratch, mask));
        put (Isa.Ori (Isa.reg_sandbox, Isa.reg_sandbox, base))
      in
      let claim i r off =
        claims_rev := (!pos, Flow.address flow i r off) :: !claims_rev
      in
      Array.iteri
        (fun i instr ->
          match instr with
          | Isa.St (rb, _, off) when provable i rb off ->
              claim i rb off;
              put instr
          | Isa.St (rb, rs, off) ->
              sandbox rb off;
              put (Isa.St (Isa.reg_sandbox, rs, 0))
          | Isa.Ld (_, rs, off) when full && provable i rs off ->
              claim i rs off;
              put instr
          | Isa.Ld (rd, rs, off) when full ->
              sandbox rs off;
              put (Isa.Ld (rd, Isa.reg_sandbox, 0))
          | Isa.Br t -> put (Isa.Br remap.(t))
          | Isa.Brz (r, t) -> put (Isa.Brz (r, remap.(t)))
          | Isa.Brnz (r, t) -> put (Isa.Brnz (r, remap.(t)))
          | other -> put other)
        p.Program.code;
      let funcs =
        Array.map
          (fun (f : Program.funcdesc) ->
            {
              f with
              Program.entry = remap.(f.Program.entry);
              code_end = remap.(f.Program.code_end);
            })
          p.Program.funcs
      in
      {
        p with
        Program.code = out;
        funcs;
        protection;
        claims = Array.of_list (List.rev !claims_rev);
      }
