(** Executable form of a register-VM graft. *)

type funcdesc = {
  name : string;
  nargs : int;
  entry : int;
  code_end : int;
}

(** The sandbox segment SFI confines writes (and optionally reads) to.
    [base] is aligned to [size]; [size] is a power of two. *)
type segment = { base : int; size : int }

type protection =
  | Unprotected  (** no SFI pass applied (baseline for ablation) *)
  | Write_jump  (** Omniware beta: stores masked, loads free *)
  | Full  (** stores and loads masked *)

type t = {
  code : Isa.instr array;
  funcs : funcdesc array;
  host : (int array -> int) array;
  ext_arity : int array;
  ext_names : string array;
      (** Extern names, parallel to [host]/[ext_arity]; the verifier
          checks externs named like typed helpers ({!Graft_analysis.Helpers})
          against the table's signature. *)
  cells : int array;
  segment : segment;
  protection : protection;
  claims : (int * Graft_analysis.Interval.t) array;
      (** Mask-elision proof annotations: [(pc, addr_interval)] pairs,
          sorted by pc, one per memory access the SFI pass left
          unmasked because its effective address provably falls inside
          [segment]. Untrusted — {!Verify} re-derives each address
          interval with {!Flow} and admits the elision only if its own
          derivation is contained in the claim and the claim in the
          segment. *)
}

let find_func p name =
  let rec go i =
    if i >= Array.length p.funcs then None
    else if p.funcs.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let protection_to_string = function
  | Unprotected -> "unprotected"
  | Write_jump -> "write+jump"
  | Full -> "full (read+write+jump)"
