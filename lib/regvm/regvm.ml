(** Front door for the register VM + SFI toolchain (the paper's
    "Omniware" technology).

    {[
      let p = Regvm.load_exn ~protection:Program.Write_jump image in
      Regvm.Machine.run p ~entry:"main" ~args:[||] ~fuel:1_000_000
    ]}

    [load] compiles the linked image, applies the SFI instrumentation
    pass for the requested protection level, and runs the load-time
    verifier, refusing code that is not correctly sandboxed. *)

module Isa = Isa
module Program = Program
module Compile = Compile
module Flow = Flow
module Sfi = Sfi
module Verify = Verify
module Machine = Machine
module Disasm = Disasm

(** [~elide:true] lets the SFI pass skip the masking triple for
    accesses whose address the {!Flow} interval analysis proves
    in-segment; each elision is recorded as a claim that the verifier
    independently re-derives before accepting the program.

    [~bounded:true] (Graftgate mode) derives a loop-bound certificate
    for every loop at the IR level ({!Graft_analysis.Loopbound}) and
    then verifies with backward-branch windows re-derived from the
    machine code; an underivable loop is a load error. *)
let load ?(protection = Program.Write_jump) ?(elide = false)
    ?(bounded = false) (image : Graft_gel.Link.image) :
    (Program.t, string) result =
  let gate =
    match Graft_analysis.Helpers.check_externs image.Graft_gel.Link.prog with
    | Error _ as e -> e
    | Ok () ->
        if bounded then Graft_analysis.Loopbound.check_image image else Ok ()
  in
  match gate with
  | Error msg -> Error msg
  | Ok () -> (
      match
        Compile.compile image
          ~segment:(Sfi.segment_of_memory image.Graft_gel.Link.mem)
      with
      | exception Compile.Compile_error msg -> Error msg
      | exception Invalid_argument msg -> Error msg
      | p -> (
          match Sfi.instrument ~elide p ~protection with
          | exception Invalid_argument msg -> Error msg
          | p -> (
              match Verify.verify ~bounded p with
              | Ok () -> Ok p
              | Error msg -> Error msg)))

let load_exn ?protection ?elide ?bounded image =
  match load ?protection ?elide ?bounded image with
  | Ok p -> p
  | Error msg -> failwith msg

(** (elided, total) counts of maskable access sites — stores, plus
    loads under [Full] protection — for the ablation report. In
    instrumented code every [St] is one site (masked through r1 or
    elided under a claim), and under [Full] every [Ld] likewise; an
    elided site is one carrying a verified claim. *)
let elision_stats (p : Program.t) : int * int =
  let full = p.Program.protection = Program.Full in
  let total =
    Array.fold_left
      (fun acc instr ->
        match instr with
        | Isa.St _ -> acc + 1
        | Isa.Ld _ when full -> acc + 1
        | _ -> acc)
      0 p.Program.code
  in
  (Array.length p.Program.claims, total)
