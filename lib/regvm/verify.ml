(** Linear-time load-time verifier for sandboxed register code — the
    "linear-time algorithm [that] can be used to guarantee that all
    memory references in a piece of object code have been correctly
    sandboxed" from the paper's section 4.2.

    Invariants enforced for [Write_jump] protection (plus loads for
    [Full]):
    - every store addresses through the dedicated register r1 with
      offset 0;
    - r1 is written only by the canonical masking pair
      [andi r1, rX, size-1] / [ori r1, r1, base] with the segment's
      exact constants;
    - every store (and the [ori]) is immediately preceded by the rest
      of its masking sequence, and no branch lands between the [andi]
      and the memory access — so r1 always holds an in-segment address
      when dereferenced;
    - r0 (hard-wired zero) is never written;
    - all branch and call targets are in range.

    One pass over the code; all checks O(1) per instruction.

    Mask elision ({!Sfi.instrument} with [~elide:true]) relaxes exactly
    one rule: a store (or, under [Full], a load) may skip the masking
    sequence if the program carries a proof claim for its pc — an
    address interval asserting the access stays inside the segment.
    Claims are untrusted: a final pass reruns the {!Flow} interval
    analysis over the instrumented code and admits each elision only if
    its own derived address interval is contained in the claim and the
    claim in the segment. An elision the verifier cannot re-establish
    is a load error, so a buggy or malicious instrumenter cannot smuggle
    an unsandboxed access past the loader. *)

module I = Graft_analysis.Interval
module Helpers = Graft_analysis.Helpers
module Loopbound = Graft_analysis.Loopbound
module Ir = Graft_gel.Ir

let verify ?(bounded = false) (p : Program.t) : (unit, string) result =
  let exception Bad of string in
  let bad i fmt =
    Printf.ksprintf
      (fun msg -> raise (Bad (Printf.sprintf "at %d: %s" i msg)))
      fmt
  in
  let code = p.Program.code in
  let n = Array.length code in
  let seg = p.Program.segment in
  let mask = seg.Program.size - 1 in
  let base = seg.Program.base in
  let protected_st =
    p.Program.protection <> Program.Unprotected
  in
  let protected_ld = p.Program.protection = Program.Full in
  let claims = Hashtbl.create 16 in
  (* Instructions that must not be branch targets: the ori completing a
     masking pair and any memory access through r1. *)
  let no_entry = Array.make n false in
  let check_reg i r =
    if r < 0 || r >= Isa.nregs then bad i "register r%d out of range" r
  in
  let check_target i t =
    if t < 0 || t >= n then bad i "branch target %d out of range" t;
    if no_entry.(t) then bad i "branch into a masking sequence at %d" t
  in
  try
    (* Helper-signature discipline (shared with every other tier): an
       extern named like a typed helper must carry the table's arity. *)
    if Array.length p.Program.ext_names <> Array.length p.Program.ext_arity
    then
      raise (Bad "extern name table does not match the arity table");
    Array.iteri
      (fun e name ->
        match Helpers.find name with
        | Some s when p.Program.ext_arity.(e) <> s.Helpers.h_arity ->
            raise
              (Bad
                 (Printf.sprintf
                    "extern %d (%s): arity %d does not match helper \
                     signature %d"
                    e name p.Program.ext_arity.(e) s.Helpers.h_arity))
        | _ -> ())
      p.Program.ext_names;
    (* Pass 0: claim manifest sanity. Each claim names a pc that must
       hold a memory access the protection level would otherwise mask,
       and its interval must fit inside the segment. *)
    Array.iter
      (fun (pc, iv) ->
        if pc < 0 || pc >= n then
          raise (Bad (Printf.sprintf "claim for pc %d out of range" pc));
        if Hashtbl.mem claims pc then bad pc "duplicate elision claim";
        if not protected_st then
          bad pc "elision claim on an unprotected program";
        (match code.(pc) with
        | Isa.St _ -> ()
        | Isa.Ld _ when protected_ld -> ()
        | _ -> bad pc "elision claim on a non-access instruction");
        if I.is_bot iv
           || not (I.leq iv (I.range base (base + seg.Program.size - 1)))
        then bad pc "claimed address interval escapes the segment";
        Hashtbl.replace claims pc iv)
      p.Program.claims;
    (* Pass 1: structural checks, dedicated-register discipline, and
       no-entry marking. *)
    for i = 0 to n - 1 do
      let instr = code.(i) in
      List.iter
        (fun r ->
          check_reg i r;
          if r = Isa.reg_zero then bad i "write to hard-wired zero register";
          if r = Isa.reg_sandbox then
            match instr with
            | Isa.Andi (rd, _, m) when rd = Isa.reg_sandbox ->
                if not protected_st then
                  bad i "sandbox register used without protection"
                else if m <> mask then
                  bad i "andi with wrong mask 0x%x (segment mask 0x%x)" m mask
            | Isa.Ori (rd, rs, b) when rd = Isa.reg_sandbox ->
                if rs <> Isa.reg_sandbox then
                  bad i "ori source must be the sandbox register";
                if b <> base then
                  bad i "ori with wrong base 0x%x (segment base 0x%x)" b base;
                (* The ori must complete an andi pair. *)
                if i = 0
                   || (match code.(i - 1) with
                      | Isa.Andi (rd', _, m')
                        when rd' = Isa.reg_sandbox && m' = mask ->
                          false
                      | _ -> true)
                then bad i "ori not preceded by the masking andi";
                no_entry.(i) <- true
            | _ -> bad i "non-masking write to the sandbox register")
        (Isa.writes instr);
      (match instr with
      | Isa.St (rb, rs, off) ->
          check_reg i rb;
          check_reg i rs;
          if protected_st && not (Hashtbl.mem claims i) then begin
            if rb <> Isa.reg_sandbox then
              bad i "store does not address through the sandbox register";
            if off <> 0 then bad i "store through sandbox register has offset";
            if i = 0
               || (match code.(i - 1) with
                  | Isa.Ori (rd, _, b) when rd = Isa.reg_sandbox && b = base ->
                      false
                  | _ -> true)
            then bad i "store not preceded by a completed masking pair";
            no_entry.(i) <- true
          end
      | Isa.Ld (rd, rs, off) ->
          check_reg i rd;
          check_reg i rs;
          if protected_ld && not (Hashtbl.mem claims i) then begin
            if rs <> Isa.reg_sandbox then
              bad i "load does not address through the sandbox register";
            if off <> 0 then bad i "load through sandbox register has offset";
            if i = 0
               || (match code.(i - 1) with
                  | Isa.Ori (rd', _, b) when rd' = Isa.reg_sandbox && b = base
                    ->
                      false
                  | _ -> true)
            then bad i "load not preceded by a completed masking pair";
            no_entry.(i) <- true
          end
      | Isa.Call { f; argbase; nargs; _ } ->
          if f < 0 || f >= Array.length p.Program.funcs then
            bad i "call to invalid function %d" f;
          if nargs <> p.Program.funcs.(f).Program.nargs then
            bad i "call with %d args to function expecting %d" nargs
              p.Program.funcs.(f).Program.nargs;
          check_reg i argbase;
          if argbase + nargs > Isa.nregs then bad i "argument block overflows"
      | Isa.Callext { e; argbase; nargs; _ } ->
          if e < 0 || e >= Array.length p.Program.host then
            bad i "call to invalid extern %d" e;
          if nargs <> p.Program.ext_arity.(e) then
            bad i "extern call arity mismatch";
          check_reg i argbase;
          if argbase + nargs > Isa.nregs then bad i "argument block overflows"
      | _ -> ())
    done;
    (* Pass 2: branch targets (needs completed no_entry map). *)
    for i = 0 to n - 1 do
      match code.(i) with
      | Isa.Br t -> check_target i t
      | Isa.Brz (r, t) | Isa.Brnz (r, t) ->
          check_reg i r;
          check_target i t
      | _ -> ()
    done;
    (* Function extents. *)
    Array.iteri
      (fun fi (f : Program.funcdesc) ->
        if f.Program.entry < 0 || f.Program.entry > f.Program.code_end
           || f.Program.code_end > n then
          raise
            (Bad (Printf.sprintf "function %d (%s): bad code extent" fi
                    f.Program.name)))
      p.Program.funcs;
    (* Graftgate mode: every backward branch must be the backedge of a
       canonical counted loop whose trip count the verifier re-derives
       from the instruction windows the compiler emits — the machine-
       level half of the loop-bound certificate check (the IR-level
       half is {!Graft_analysis.Loopbound.check_image}, run by the
       loader). *)
    if bounded then begin
      let backedges = ref [] in
      for b = 0 to n - 1 do
        match code.(b) with
        | (Isa.Brz (_, t) | Isa.Brnz (_, t)) when t <= b ->
            bad b "conditional backward branch (%s) is never certified"
              (Isa.to_string code.(b))
        | Isa.Br t when t <= b ->
            let fail fmt =
              Printf.ksprintf
                (fun m ->
                  bad b "backward branch (%s): %s" (Isa.to_string code.(b)) m)
                fmt
            in
            if t < 2 || b < t + 6 then
              fail "no room for a counted-loop window";
            (* Head: [movi rk, LIMIT; cmp rc, ri, rk; brz rc, exit]. *)
            let ri, limit, cmp =
              match (code.(t), code.(t + 1), code.(t + 2)) with
              | ( Isa.Movi (rk, limit),
                  Isa.Cmp (((Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge) as cmp), rc, ri, rk'),
                  Isa.Brz (rc', e) )
                when rk' = rk && rc' = rc ->
                  if e <= b then fail "loop exit does not leave the loop";
                  (ri, limit, cmp)
              | _ -> fail "loop head is not the canonical counted test"
            in
            if ri < Isa.reg_base then
              fail "loop counter r%d is not a local register" ri;
            (* Initialiser immediately above the head. *)
            let init =
              match (code.(t - 2), code.(t - 1)) with
              | Isa.Movi (rI, v), Isa.Mov (ri', rI') when ri' = ri && rI' = rI
                ->
                  v
              | _ -> fail "loop counter has no constant initialiser"
            in
            (* Step: [movi rA, STEP; add/sub rA, ri, rA; mov ri, rA]. *)
            let op, step =
              match (code.(b - 3), code.(b - 2), code.(b - 1)) with
              | ( Isa.Movi (ra, s),
                  Isa.Bin (Ir.Kint, ((Ir.Add | Ir.Sub) as op), ra', ri', ra''),
                  Isa.Mov (ri'', ra''') )
                when ra' = ra && ra'' = ra && ra''' = ra && ri' = ri
                     && ri'' = ri ->
                  (op, s)
              | _ -> fail "loop step is not a single constant counter bump"
            in
            (match (cmp, op) with
            | (Ir.Lt | Ir.Le), Ir.Add | (Ir.Gt | Ir.Ge), Ir.Sub -> ()
            | _ ->
                fail "loop step does not advance the counter toward the limit");
            if step < 1 then fail "loop step %d is not positive" step;
            (* The step's final mov must be the only write to the
               counter anywhere in the loop. *)
            for j = t to b do
              if j <> b - 1 && List.mem ri (Isa.writes code.(j)) then
                fail "counter r%d is also written at %d (%s)" ri j
                  (Isa.to_string code.(j))
            done;
            (match Loopbound.trips ~init ~limit ~cmp ~step with
            | Some _ -> ()
            | None ->
                fail "trip count exceeds %d or diverges" Loopbound.max_trip);
            backedges := (t, b) :: !backedges
        | _ -> ()
      done;
      (* Entry discipline: control may enter a certified window only
         through its initialiser at [t-2] (so the counter is always
         freshly initialised), and may reach the backedge only by
         falling through the whole step window (so every backedge bumps
         the counter). *)
      List.iter
        (fun (t, b) ->
          let target_of j =
            match code.(j) with
            | Isa.Br u | Isa.Brz (_, u) | Isa.Brnz (_, u) -> Some u
            | _ -> None
          in
          for j = 0 to n - 1 do
            match target_of j with
            | Some u ->
                if (j < t - 2 || j > b) && u > t - 2 && u <= b then
                  bad j "branch into a certified loop window at %d" u;
                if u > b - 3 && u <= b && j <> b then
                  bad j "branch into a certified loop's step window at %d" u
            | None -> ()
          done;
          Array.iter
            (fun (f : Program.funcdesc) ->
              if f.Program.entry > t - 2 && f.Program.entry < b then
                raise
                  (Bad
                     (Printf.sprintf
                        "function %s enters a certified loop window"
                        f.Program.name)))
            p.Program.funcs)
        !backedges
    end;
    (* Pass 3 (only when elisions are present): rerun the interval
       analysis over the instrumented code and require every claimed
       elision to be independently re-derivable — derived address
       interval ⊆ claim ⊆ segment. The claim itself is never believed. *)
    if Hashtbl.length claims > 0 then begin
      let flow = Flow.analyze code p.Program.funcs in
      Hashtbl.iter
        (fun pc claim ->
          let rb, off =
            match code.(pc) with
            | Isa.St (rb, _, off) -> (rb, off)
            | Isa.Ld (_, rs, off) -> (rs, off)
            | _ -> assert false (* pass 0 *)
          in
          let derived = Flow.address flow pc rb off in
          if I.is_bot derived then
            bad pc "elision claim on unreachable code";
          if not (I.leq derived claim) then
            bad pc
              "cannot re-derive elision: address %s not within claimed %s"
              (I.to_string derived) (I.to_string claim))
        claims
    end;
    Ok ()
  with Bad msg -> Error msg
