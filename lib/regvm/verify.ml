(** Linear-time load-time verifier for sandboxed register code — the
    "linear-time algorithm [that] can be used to guarantee that all
    memory references in a piece of object code have been correctly
    sandboxed" from the paper's section 4.2.

    Invariants enforced for [Write_jump] protection (plus loads for
    [Full]):
    - every store addresses through the dedicated register r1 with
      offset 0;
    - r1 is written only by the canonical masking pair
      [andi r1, rX, size-1] / [ori r1, r1, base] with the segment's
      exact constants;
    - every store (and the [ori]) is immediately preceded by the rest
      of its masking sequence, and no branch lands between the [andi]
      and the memory access — so r1 always holds an in-segment address
      when dereferenced;
    - r0 (hard-wired zero) is never written;
    - all branch and call targets are in range.

    One pass over the code; all checks O(1) per instruction.

    Mask elision ({!Sfi.instrument} with [~elide:true]) relaxes exactly
    one rule: a store (or, under [Full], a load) may skip the masking
    sequence if the program carries a proof claim for its pc — an
    address interval asserting the access stays inside the segment.
    Claims are untrusted: a final pass reruns the {!Flow} interval
    analysis over the instrumented code and admits each elision only if
    its own derived address interval is contained in the claim and the
    claim in the segment. An elision the verifier cannot re-establish
    is a load error, so a buggy or malicious instrumenter cannot smuggle
    an unsandboxed access past the loader. *)

module I = Graft_analysis.Interval

let verify (p : Program.t) : (unit, string) result =
  let exception Bad of string in
  let bad i fmt =
    Printf.ksprintf
      (fun msg -> raise (Bad (Printf.sprintf "at %d: %s" i msg)))
      fmt
  in
  let code = p.Program.code in
  let n = Array.length code in
  let seg = p.Program.segment in
  let mask = seg.Program.size - 1 in
  let base = seg.Program.base in
  let protected_st =
    p.Program.protection <> Program.Unprotected
  in
  let protected_ld = p.Program.protection = Program.Full in
  let claims = Hashtbl.create 16 in
  (* Instructions that must not be branch targets: the ori completing a
     masking pair and any memory access through r1. *)
  let no_entry = Array.make n false in
  let check_reg i r =
    if r < 0 || r >= Isa.nregs then bad i "register r%d out of range" r
  in
  let check_target i t =
    if t < 0 || t >= n then bad i "branch target %d out of range" t;
    if no_entry.(t) then bad i "branch into a masking sequence at %d" t
  in
  try
    (* Pass 0: claim manifest sanity. Each claim names a pc that must
       hold a memory access the protection level would otherwise mask,
       and its interval must fit inside the segment. *)
    Array.iter
      (fun (pc, iv) ->
        if pc < 0 || pc >= n then
          raise (Bad (Printf.sprintf "claim for pc %d out of range" pc));
        if Hashtbl.mem claims pc then bad pc "duplicate elision claim";
        if not protected_st then
          bad pc "elision claim on an unprotected program";
        (match code.(pc) with
        | Isa.St _ -> ()
        | Isa.Ld _ when protected_ld -> ()
        | _ -> bad pc "elision claim on a non-access instruction");
        if I.is_bot iv
           || not (I.leq iv (I.range base (base + seg.Program.size - 1)))
        then bad pc "claimed address interval escapes the segment";
        Hashtbl.replace claims pc iv)
      p.Program.claims;
    (* Pass 1: structural checks, dedicated-register discipline, and
       no-entry marking. *)
    for i = 0 to n - 1 do
      let instr = code.(i) in
      List.iter
        (fun r ->
          check_reg i r;
          if r = Isa.reg_zero then bad i "write to hard-wired zero register";
          if r = Isa.reg_sandbox then
            match instr with
            | Isa.Andi (rd, _, m) when rd = Isa.reg_sandbox ->
                if not protected_st then
                  bad i "sandbox register used without protection"
                else if m <> mask then
                  bad i "andi with wrong mask 0x%x (segment mask 0x%x)" m mask
            | Isa.Ori (rd, rs, b) when rd = Isa.reg_sandbox ->
                if rs <> Isa.reg_sandbox then
                  bad i "ori source must be the sandbox register";
                if b <> base then
                  bad i "ori with wrong base 0x%x (segment base 0x%x)" b base;
                (* The ori must complete an andi pair. *)
                if i = 0
                   || (match code.(i - 1) with
                      | Isa.Andi (rd', _, m')
                        when rd' = Isa.reg_sandbox && m' = mask ->
                          false
                      | _ -> true)
                then bad i "ori not preceded by the masking andi";
                no_entry.(i) <- true
            | _ -> bad i "non-masking write to the sandbox register")
        (Isa.writes instr);
      (match instr with
      | Isa.St (rb, rs, off) ->
          check_reg i rb;
          check_reg i rs;
          if protected_st && not (Hashtbl.mem claims i) then begin
            if rb <> Isa.reg_sandbox then
              bad i "store does not address through the sandbox register";
            if off <> 0 then bad i "store through sandbox register has offset";
            if i = 0
               || (match code.(i - 1) with
                  | Isa.Ori (rd, _, b) when rd = Isa.reg_sandbox && b = base ->
                      false
                  | _ -> true)
            then bad i "store not preceded by a completed masking pair";
            no_entry.(i) <- true
          end
      | Isa.Ld (rd, rs, off) ->
          check_reg i rd;
          check_reg i rs;
          if protected_ld && not (Hashtbl.mem claims i) then begin
            if rs <> Isa.reg_sandbox then
              bad i "load does not address through the sandbox register";
            if off <> 0 then bad i "load through sandbox register has offset";
            if i = 0
               || (match code.(i - 1) with
                  | Isa.Ori (rd', _, b) when rd' = Isa.reg_sandbox && b = base
                    ->
                      false
                  | _ -> true)
            then bad i "load not preceded by a completed masking pair";
            no_entry.(i) <- true
          end
      | Isa.Call { f; argbase; nargs; _ } ->
          if f < 0 || f >= Array.length p.Program.funcs then
            bad i "call to invalid function %d" f;
          if nargs <> p.Program.funcs.(f).Program.nargs then
            bad i "call with %d args to function expecting %d" nargs
              p.Program.funcs.(f).Program.nargs;
          check_reg i argbase;
          if argbase + nargs > Isa.nregs then bad i "argument block overflows"
      | Isa.Callext { e; argbase; nargs; _ } ->
          if e < 0 || e >= Array.length p.Program.host then
            bad i "call to invalid extern %d" e;
          if nargs <> p.Program.ext_arity.(e) then
            bad i "extern call arity mismatch";
          check_reg i argbase;
          if argbase + nargs > Isa.nregs then bad i "argument block overflows"
      | _ -> ())
    done;
    (* Pass 2: branch targets (needs completed no_entry map). *)
    for i = 0 to n - 1 do
      match code.(i) with
      | Isa.Br t -> check_target i t
      | Isa.Brz (r, t) | Isa.Brnz (r, t) ->
          check_reg i r;
          check_target i t
      | _ -> ()
    done;
    (* Function extents. *)
    Array.iteri
      (fun fi (f : Program.funcdesc) ->
        if f.Program.entry < 0 || f.Program.entry > f.Program.code_end
           || f.Program.code_end > n then
          raise
            (Bad (Printf.sprintf "function %d (%s): bad code extent" fi
                    f.Program.name)))
      p.Program.funcs;
    (* Pass 3 (only when elisions are present): rerun the interval
       analysis over the instrumented code and require every claimed
       elision to be independently re-derivable — derived address
       interval ⊆ claim ⊆ segment. The claim itself is never believed. *)
    if Hashtbl.length claims > 0 then begin
      let flow = Flow.analyze code p.Program.funcs in
      Hashtbl.iter
        (fun pc claim ->
          let rb, off =
            match code.(pc) with
            | Isa.St (rb, _, off) -> (rb, off)
            | Isa.Ld (_, rs, off) -> (rs, off)
            | _ -> assert false (* pass 0 *)
          in
          let derived = Flow.address flow pc rb off in
          if I.is_bot derived then
            bad pc "elision claim on unreachable code";
          if not (I.leq derived claim) then
            bad pc
              "cannot re-derive elision: address %s not within claimed %s"
              (I.to_string derived) (I.to_string claim))
        claims
    end;
    Ok ()
  with Bad msg -> Error msg
