(** Compiler from GEL IR to register-VM code.

    Locals live in registers [reg_base ..]; expression temporaries are
    stack-allocated above the locals. Array bases are baked in as load/
    store immediates, and no bounds checks are emitted: in the SFI
    model, memory safety comes from the [Sfi] rewriting pass, not from
    checks — exactly the trade the paper describes (and why the
    Omniware beta lacked read protection). *)

open Graft_gel

exception Compile_error of string

type emitter = { mutable code : Isa.instr array; mutable len : int }

let emit em op =
  if em.len = Array.length em.code then begin
    let bigger = Array.make (max 64 (2 * em.len)) Isa.Halt in
    Array.blit em.code 0 bigger 0 em.len;
    em.code <- bigger
  end;
  em.code.(em.len) <- op;
  em.len <- em.len + 1

let emit_patch em =
  emit em Isa.Halt;
  em.len - 1

type loop_ctx = { mutable breaks : int list; mutable continues : int list }

type ctx = {
  em : emitter;
  image : Link.image;
  mutable loops : loop_ctx list;
  temp_base : int;  (** first register above the locals *)
  mutable temp : int;  (** next free temporary register *)
}

let alloc ctx =
  let r = ctx.temp in
  if r >= Isa.nregs then
    raise (Compile_error "expression too deep: out of registers");
  ctx.temp <- r + 1;
  r

(* Evaluate [e] and return the register holding the value. The result
   register is either a local (unmodified) or a temporary at or above
   the caller's mark. *)
let rec expr ctx (e : Ir.expr) : int =
  match e with
  | Ir.Const n ->
      let rd = alloc ctx in
      emit ctx.em (Isa.Movi (rd, n));
      rd
  | Ir.Local slot -> Isa.reg_base + slot
  | Ir.Global slot ->
      let rd = alloc ctx in
      emit ctx.em (Isa.Ld (rd, Isa.reg_zero, ctx.image.Link.global_base + slot));
      rd
  | Ir.Load (arr, idx) ->
      let mark = ctx.temp in
      let ri = expr ctx idx in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Ld (rd, ri, ctx.image.Link.arr_base.(arr)));
      rd
  | Ir.Arith (kind, op, a, b) ->
      let mark = ctx.temp in
      let ra = expr ctx a in
      let rb = expr ctx b in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Bin (kind, op, rd, ra, rb));
      rd
  | Ir.Cmp (c, a, b) ->
      let mark = ctx.temp in
      let ra = expr ctx a in
      let rb = expr ctx b in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Cmp (c, rd, ra, rb));
      rd
  | Ir.Not a ->
      let mark = ctx.temp in
      let ra = expr ctx a in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Un (Isa.Unot, rd, ra));
      rd
  | Ir.Bnot (k, a) ->
      let mark = ctx.temp in
      let ra = expr ctx a in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Un (Isa.Ubnot k, rd, ra));
      rd
  | Ir.Neg (k, a) ->
      let mark = ctx.temp in
      let ra = expr ctx a in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Un (Isa.Uneg k, rd, ra));
      rd
  | Ir.ToWord a ->
      let mark = ctx.temp in
      let ra = expr ctx a in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Un (Isa.Umask, rd, ra));
      rd
  | Ir.ToBool a ->
      let mark = ctx.temp in
      let ra = expr ctx a in
      ctx.temp <- mark;
      let rd = alloc ctx in
      emit ctx.em (Isa.Un (Isa.Utobool, rd, ra));
      rd
  | Ir.And (a, b) ->
      let mark = ctx.temp in
      let rd = alloc ctx in
      let ra = expr ctx a in
      let jz = emit_patch ctx.em in
      let rb = expr ctx b in
      emit ctx.em (Isa.Un (Isa.Utobool, rd, rb));
      let jend = emit_patch ctx.em in
      ctx.em.code.(jz) <- Isa.Brz (ra, ctx.em.len);
      emit ctx.em (Isa.Movi (rd, 0));
      ctx.em.code.(jend) <- Isa.Br ctx.em.len;
      ctx.temp <- mark + 1;
      rd
  | Ir.Or (a, b) ->
      let mark = ctx.temp in
      let rd = alloc ctx in
      let ra = expr ctx a in
      let jnz = emit_patch ctx.em in
      let rb = expr ctx b in
      emit ctx.em (Isa.Un (Isa.Utobool, rd, rb));
      let jend = emit_patch ctx.em in
      ctx.em.code.(jnz) <- Isa.Brnz (ra, ctx.em.len);
      emit ctx.em (Isa.Movi (rd, 1));
      ctx.em.code.(jend) <- Isa.Br ctx.em.len;
      ctx.temp <- mark + 1;
      rd
  | Ir.Call (fidx, args) -> compile_call ctx args (fun dst argbase nargs ->
      Isa.Call { f = fidx; dst; argbase; nargs })
  | Ir.CallExt (eidx, args) -> compile_call ctx args (fun dst argbase nargs ->
      Isa.Callext { e = eidx; dst; argbase; nargs })

and compile_call ctx args mk =
  let n = Array.length args in
  let mark = ctx.temp in
  (* Reserve a contiguous argument block, then evaluate each argument
     with temporaries above the block and move it into place. *)
  ctx.temp <- mark + n;
  if ctx.temp > Isa.nregs then
    raise (Compile_error "call has too many arguments for the register file");
  Array.iteri
    (fun i a ->
      let save = ctx.temp in
      let r = expr ctx a in
      ctx.temp <- save;
      if r <> mark + i then emit ctx.em (Isa.Mov (mark + i, r)))
    args;
  ctx.temp <- mark;
  let rd = alloc ctx in
  emit ctx.em (mk rd mark n);
  rd

let rec stmt ctx (s : Ir.stmt) =
  let em = ctx.em in
  match s with
  | Ir.At (_, s) -> stmt ctx s
  | Ir.Set_local (slot, e) ->
      let mark = ctx.temp in
      let r = expr ctx e in
      ctx.temp <- mark;
      let dst = Isa.reg_base + slot in
      if r <> dst then emit em (Isa.Mov (dst, r))
  | Ir.Set_global (slot, e) ->
      let mark = ctx.temp in
      let r = expr ctx e in
      ctx.temp <- mark;
      emit em (Isa.St (Isa.reg_zero, r, ctx.image.Link.global_base + slot))
  | Ir.Store (arr, idx, v) ->
      let mark = ctx.temp in
      let ri = expr ctx idx in
      let rv = expr ctx v in
      ctx.temp <- mark;
      emit em (Isa.St (ri, rv, ctx.image.Link.arr_base.(arr)))
  | Ir.If (cond, t, f) ->
      let mark = ctx.temp in
      let rc = expr ctx cond in
      ctx.temp <- mark;
      let jz = emit_patch em in
      List.iter (stmt ctx) t;
      if f = [] then em.code.(jz) <- Isa.Brz (rc, em.len)
      else begin
        let jend = emit_patch em in
        em.code.(jz) <- Isa.Brz (rc, em.len);
        List.iter (stmt ctx) f;
        em.code.(jend) <- Isa.Br em.len
      end
  | Ir.While (cond, body, step) ->
      let top = em.len in
      let mark = ctx.temp in
      let rc = expr ctx cond in
      ctx.temp <- mark;
      let jexit = emit_patch em in
      let loop = { breaks = []; continues = [] } in
      ctx.loops <- loop :: ctx.loops;
      List.iter (stmt ctx) body;
      ctx.loops <- List.tl ctx.loops;
      let step_target = em.len in
      List.iter (stmt ctx) step;
      emit em (Isa.Br top);
      let exit_target = em.len in
      em.code.(jexit) <- Isa.Brz (rc, exit_target);
      List.iter (fun i -> em.code.(i) <- Isa.Br exit_target) loop.breaks;
      List.iter (fun i -> em.code.(i) <- Isa.Br step_target) loop.continues
  | Ir.Return (Some e) ->
      let mark = ctx.temp in
      let r = expr ctx e in
      ctx.temp <- mark;
      emit em (Isa.Ret r)
  | Ir.Return None -> emit em (Isa.Ret Isa.reg_zero)
  | Ir.Break -> begin
      match ctx.loops with
      | loop :: _ -> loop.breaks <- emit_patch em :: loop.breaks
      | [] -> assert false
    end
  | Ir.Continue -> begin
      match ctx.loops with
      | loop :: _ -> loop.continues <- emit_patch em :: loop.continues
      | [] -> assert false
    end
  | Ir.Eval e ->
      let mark = ctx.temp in
      ignore (expr ctx e : int);
      ctx.temp <- mark

(** Compile a linked image. [segment] delimits the graft's sandbox; use
    [Sfi.segment_of_memory] when the graft owns its whole memory. The
    result is unprotected until run through [Sfi.instrument]. *)
let compile (image : Link.image) ~(segment : Program.segment) : Program.t =
  let prog = image.Link.prog in
  let em = { code = Array.make 256 Isa.Halt; len = 0 } in
  let funcs =
    Array.map
      (fun (f : Ir.func) ->
        let entry = em.len in
        let ctx =
          {
            em;
            image;
            loops = [];
            temp_base = Isa.reg_base + f.Ir.nlocals;
            temp = Isa.reg_base + f.Ir.nlocals;
          }
        in
        ignore ctx.temp_base;
        List.iter (stmt ctx) f.Ir.body;
        emit em (Isa.Ret Isa.reg_zero);
        {
          Program.name = f.Ir.fname;
          nargs = List.length f.Ir.fparams;
          entry;
          code_end = em.len;
        })
      prog.Ir.funcs
  in
  {
    Program.code = Array.sub em.code 0 em.len;
    funcs;
    host = image.Link.host;
    ext_arity =
      Array.map (fun (e : Ir.ext) -> List.length e.Ir.eparams) prog.Ir.externs;
    ext_names = Array.map (fun (e : Ir.ext) -> e.Ir.ename) prog.Ir.externs;
    cells = Graft_mem.Memory.cells image.Link.mem;
    segment;
    protection = Program.Unprotected;
    claims = [||];
  }
