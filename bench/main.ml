(* The benchmark harness.

   Two layers:

   1. Bechamel micro-benchmarks — one Test.make group per paper table,
      measuring that table's core graft operation under every
      technology with OLS over monotonic-clock samples.

   2. The experiment driver (Graft_report.Experiments) — regenerates
      the paper's Tables 1-6, Figure 1, and the DESIGN.md ablations in
      the paper's own row/column format, with break-even analysis.

   Usage:
     dune exec bench/main.exe                  micro + all tables (quick)
     dune exec bench/main.exe -- full          micro + all tables (full)
     dune exec bench/main.exe -- micro         bechamel micro-suite only
     dune exec bench/main.exe -- table2 ...    specific tables (quick)
     dune exec bench/main.exe -- full table5   specific tables (full)
     dune exec bench/main.exe -- opt table2    add the optimized bytecode
                                               tier as an extra column
     dune exec bench/main.exe -- stackvm-json  interpreted-vs-optimized
                                               tier comparison to
                                               BENCH_stackvm.json
*)

open Bechamel
open Graft_core

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite.                                               *)
(* ------------------------------------------------------------------ *)

(* Technologies in the micro suite; the source interpreter is measured
   by the experiment driver instead (a single operation takes long
   enough that OLS sampling over it wastes minutes). *)
let micro_techs =
  [
    Technology.Unsafe_c; Technology.Safe_lang; Technology.Safe_lang_nil;
    Technology.Sfi_write_jump; Technology.Sfi_full; Technology.Bytecode_vm;
    Technology.Bytecode_opt; Technology.Ast_interp;
  ]

let hot_pages = Array.init 64 (fun i -> 3 * i)

(* Table 2 core op: search the 64-entry hot list for an absent page. *)
let evict_tests =
  let tests =
    List.map
      (fun tech ->
        let runner =
          Runners.evict
            ~rng:(Graft_util.Prng.create 0xBE9CL)
            tech ~capacity_nodes:128 ()
        in
        runner.Runners.refresh ~hot:hot_pages ~lru:[||];
        Test.make
          ~name:(Technology.name tech)
          (Staged.stage (fun () -> ignore (runner.Runners.contains 99_999))))
      micro_techs
  in
  Test.make_grouped ~name:"table2/hotlist-search-64" tests

(* Table 5 core op: MD5 one 4KB buffer. *)
let md5_tests =
  let size = 4096 in
  let data = Graft_util.Prng.bytes (Graft_util.Prng.create 0x3D5L) size in
  let tests =
    List.map
      (fun tech ->
        let runner = Runners.md5 tech ~capacity:size in
        runner.Runners.load data;
        Test.make
          ~name:(Technology.name tech)
          (Staged.stage (fun () -> runner.Runners.compute size)))
      micro_techs
  in
  Test.make_grouped ~name:"table5/md5-4KB" tests

(* Table 6 core op: one logical-disk mapped write. *)
let logdisk_tests =
  let nblocks = 4096 in
  let tests =
    List.map
      (fun tech ->
        let policy = Runners.logdisk_policy tech ~nblocks in
        let next = ref 0 in
        Test.make
          ~name:(Technology.name tech)
          (Staged.stage (fun () ->
               next := (!next + 1677) land (nblocks - 1);
               ignore (policy.Graft_kernel.Logdisk.map_write !next))))
      micro_techs
  in
  Test.make_grouped ~name:"table6/logdisk-map-write" tests

(* Table 1 / Figure 1 core op: the upcall cost model itself. *)
let upcall_tests =
  let clock = Graft_kernel.Simclock.create () in
  let domain =
    Graft_kernel.Upcall.create ~name:"bench" ~clock ~switch_s:10e-6 ()
  in
  Test.make_grouped ~name:"table1/upcall-model"
    [
      Test.make ~name:"upcall-dispatch"
        (Staged.stage (fun () ->
             ignore (Graft_kernel.Upcall.upcall domain (fun a -> a.(0)) [| 1 |])));
    ]

let run_micro () =
  let tests =
    Test.make_grouped ~name:"graftkit"
      [ evict_tests; md5_tests; logdisk_tests; upcall_tests ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  print_endline "== Bechamel micro-benchmarks (per operation, OLS) ==";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let t = Graft_util.Tablefmt.create [| "Benchmark"; "ns/op" |] in
  List.iter
    (fun (name, ns) ->
      Graft_util.Tablefmt.add_row t [| name; Printf.sprintf "%.1f" ns |])
    rows;
  Graft_util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bytecode tier comparison (machine-readable).                        *)
(* ------------------------------------------------------------------ *)

(* Interpreted vs optimized vs JIT bytecode tiers over each graft's
   core op, written as v4 JSON (medians with bootstrap CIs) so CI and
   plots can track the speedups. The suite, the harness, and the
   schema live in Graft_report.Benchgate — the same code
   `graftkit bench` runs. *)
let stackvm_json ?(path = "BENCH_stackvm.json") () =
  let rows = Graft_report.Benchgate.run_suite () in
  List.iter
    (fun (r : Graft_report.Benchgate.row) ->
      let open Graft_stats.Robust in
      Printf.printf
        "%-20s interp %10.1f ns/op   opt %10.1f ns/op   jit %10.1f ns/op   \
         opt %.2fx   jit %.2fx\n\
         %!"
        r.Graft_report.Benchgate.graft r.Graft_report.Benchgate.interp.median
        r.Graft_report.Benchgate.opt.median
        r.Graft_report.Benchgate.jit.median
        (r.Graft_report.Benchgate.interp.median
        /. r.Graft_report.Benchgate.opt.median)
        (r.Graft_report.Benchgate.interp.median
        /. r.Graft_report.Benchgate.jit.median))
    rows;
  Graft_report.Benchgate.save ~path rows;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Experiment tables.                                                  *)
(* ------------------------------------------------------------------ *)

let known_tables scale =
  let open Graft_report.Experiments in
  [
    ("table1", fun () -> table1 ());
    ("table2", fun () -> table2 scale);
    ("table3", fun () -> table3 ());
    ("table4", fun () -> table4 ());
    ("table5", fun () -> table5 scale);
    ("table6", fun () -> table6 scale);
    ("figure1", fun () -> figure1 scale);
    ("a1", fun () -> ablation_nil scale);
    ("a2", fun () -> ablation_sfi scale);
    ("a3", fun () -> ablation_interp scale);
    ("a4", fun () -> ablation_regvm ());
    ("a5", fun () -> ablation_upcall ());
    ("a6", fun () -> ablation_pfvm scale);
    ("a7", fun () -> ablation_hipec scale);
    ("a8", fun () -> ablation_trace scale);
    ("a9", fun () -> ablation_supervision scale);
    ("a10", fun () -> ablation_metrics scale);
    ("a11", fun () -> ablation_gate scale);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale =
    if List.mem "full" args then Graft_report.Experiments.Full
    else Graft_report.Experiments.Quick
  in
  if List.mem "opt" args then
    Graft_report.Experiments.extra_techs :=
      [ Technology.Bytecode_opt; Technology.Safe_lang_static; Technology.Jit ];
  let args =
    List.filter (fun a -> a <> "full" && a <> "quick" && a <> "opt") args
  in
  let tables = known_tables scale in
  match args with
  | [ "micro" ] -> run_micro ()
  | [ "stackvm-json" ] -> stackvm_json ()
  | [] ->
      run_micro ();
      List.iter
        (fun (_, f) -> print_string (Graft_report.Experiments.render (f ())))
        tables
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) tables with
          | Some f -> print_string (Graft_report.Experiments.render (f ()))
          | None ->
              prerr_endline ("unknown table: " ^ name);
              exit 2)
        names
