(* The benchmark harness.

   Two layers:

   1. Bechamel micro-benchmarks — one Test.make group per paper table,
      measuring that table's core graft operation under every
      technology with OLS over monotonic-clock samples.

   2. The experiment driver (Graft_report.Experiments) — regenerates
      the paper's Tables 1-6, Figure 1, and the DESIGN.md ablations in
      the paper's own row/column format, with break-even analysis.

   Usage:
     dune exec bench/main.exe                  micro + all tables (quick)
     dune exec bench/main.exe -- full          micro + all tables (full)
     dune exec bench/main.exe -- micro         bechamel micro-suite only
     dune exec bench/main.exe -- table2 ...    specific tables (quick)
     dune exec bench/main.exe -- full table5   specific tables (full)
     dune exec bench/main.exe -- opt table2    add the optimized bytecode
                                               tier as an extra column
     dune exec bench/main.exe -- stackvm-json  interpreted-vs-optimized
                                               tier comparison to
                                               BENCH_stackvm.json
*)

open Bechamel
open Graft_core

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite.                                               *)
(* ------------------------------------------------------------------ *)

(* Technologies in the micro suite; the source interpreter is measured
   by the experiment driver instead (a single operation takes long
   enough that OLS sampling over it wastes minutes). *)
let micro_techs =
  [
    Technology.Unsafe_c; Technology.Safe_lang; Technology.Safe_lang_nil;
    Technology.Sfi_write_jump; Technology.Sfi_full; Technology.Bytecode_vm;
    Technology.Bytecode_opt; Technology.Ast_interp;
  ]

let hot_pages = Array.init 64 (fun i -> 3 * i)

(* Table 2 core op: search the 64-entry hot list for an absent page. *)
let evict_tests =
  let tests =
    List.map
      (fun tech ->
        let runner =
          Runners.evict
            ~rng:(Graft_util.Prng.create 0xBE9CL)
            tech ~capacity_nodes:128 ()
        in
        runner.Runners.refresh ~hot:hot_pages ~lru:[||];
        Test.make
          ~name:(Technology.name tech)
          (Staged.stage (fun () -> ignore (runner.Runners.contains 99_999))))
      micro_techs
  in
  Test.make_grouped ~name:"table2/hotlist-search-64" tests

(* Table 5 core op: MD5 one 4KB buffer. *)
let md5_tests =
  let size = 4096 in
  let data = Graft_util.Prng.bytes (Graft_util.Prng.create 0x3D5L) size in
  let tests =
    List.map
      (fun tech ->
        let runner = Runners.md5 tech ~capacity:size in
        runner.Runners.load data;
        Test.make
          ~name:(Technology.name tech)
          (Staged.stage (fun () -> runner.Runners.compute size)))
      micro_techs
  in
  Test.make_grouped ~name:"table5/md5-4KB" tests

(* Table 6 core op: one logical-disk mapped write. *)
let logdisk_tests =
  let nblocks = 4096 in
  let tests =
    List.map
      (fun tech ->
        let policy = Runners.logdisk_policy tech ~nblocks in
        let next = ref 0 in
        Test.make
          ~name:(Technology.name tech)
          (Staged.stage (fun () ->
               next := (!next + 1677) land (nblocks - 1);
               ignore (policy.Graft_kernel.Logdisk.map_write !next))))
      micro_techs
  in
  Test.make_grouped ~name:"table6/logdisk-map-write" tests

(* Table 1 / Figure 1 core op: the upcall cost model itself. *)
let upcall_tests =
  let clock = Graft_kernel.Simclock.create () in
  let domain =
    Graft_kernel.Upcall.create ~name:"bench" ~clock ~switch_s:10e-6 ()
  in
  Test.make_grouped ~name:"table1/upcall-model"
    [
      Test.make ~name:"upcall-dispatch"
        (Staged.stage (fun () ->
             ignore (Graft_kernel.Upcall.upcall domain (fun a -> a.(0)) [| 1 |])));
    ]

let run_micro () =
  let tests =
    Test.make_grouped ~name:"graftkit"
      [ evict_tests; md5_tests; logdisk_tests; upcall_tests ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  print_endline "== Bechamel micro-benchmarks (per operation, OLS) ==";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let t = Graft_util.Tablefmt.create [| "Benchmark"; "ns/op" |] in
  List.iter
    (fun (name, ns) ->
      Graft_util.Tablefmt.add_row t [| name; Printf.sprintf "%.1f" ns |])
    rows;
  Graft_util.Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bytecode tier comparison (machine-readable).                        *)
(* ------------------------------------------------------------------ *)

(* Interpreted vs optimized bytecode tier over each graft's core op,
   written as JSON so CI and plots can track the speedup. *)
let stackvm_json ?(path = "BENCH_stackvm.json") () =
  let open Graft_util in
  (* Interleave the two tiers and keep each one's fastest round: on a
     shared machine contention is additive noise, and back-to-back
     sampling keeps a frequency drift from landing entirely on one
     side of the ratio. *)
  let time2 interp_op opt_op =
    ignore (interp_op ());
    ignore (opt_op ());
    let iters =
      Timer.calibrate_iters ~max_iters:10_000_000 ~target_s:0.02 interp_op
    in
    let sample op =
      let t0 = Timer.now_ns () in
      for _ = 1 to iters do
        op ()
      done;
      Int64.to_float (Int64.sub (Timer.now_ns ()) t0) /. float_of_int iters
    in
    let best_i = ref infinity and best_o = ref infinity in
    for _ = 1 to 7 do
      let a = sample interp_op in
      let b = sample opt_op in
      if a < !best_i then best_i := a;
      if b < !best_o then best_o := b
    done;
    (!best_i, !best_o)
  in
  let evict_op tech =
    let runner =
      Runners.evict ~rng:(Prng.create 0x5EEDL) tech ~capacity_nodes:128 ()
    in
    runner.Runners.refresh ~hot:hot_pages ~lru:[||];
    fun () -> ignore (runner.Runners.contains 99_999)
  in
  let md5_op tech =
    let size = 65536 in
    let data = Prng.bytes (Prng.create 0x3D5L) size in
    let runner = Runners.md5 tech ~capacity:size in
    runner.Runners.load data;
    fun () -> runner.Runners.compute size
  in
  let logdisk_op tech =
    let nblocks = 4096 in
    let policy = Runners.logdisk_policy tech ~nblocks in
    let next = ref 0 in
    fun () ->
      next := (!next + 1677) land (nblocks - 1);
      ignore (policy.Graft_kernel.Logdisk.map_write !next)
  in
  let pkt_op tech =
    let traffic =
      Graft_kernel.Netpkt.random_traffic (Prng.create 0xF17L) ~count:256
    in
    let accepts =
      Runners.packet_filter tech ~protocol:Graft_kernel.Netpkt.proto_udp
        ~port:53
    in
    let i = ref 0 in
    fun () ->
      i := (!i + 1) land 255;
      ignore (accepts traffic.(!i))
  in
  let grafts =
    [
      ("evict_contains", evict_op); ("md5_64k", md5_op);
      ("logdisk_map_write", logdisk_op); ("packet_filter", pkt_op);
    ]
  in
  let rows =
    List.map
      (fun (name, mk) ->
        let interp, opt =
          time2 (mk Technology.Bytecode_vm) (mk Technology.Bytecode_opt)
        in
        Printf.printf "%-20s interp %10.1f ns/op   opt %10.1f ns/op   %.2fx\n%!"
          name interp opt (interp /. opt);
        Printf.sprintf
          "  { \"graft\": %S, \"interp_ns_per_op\": %.1f, \
           \"opt_ns_per_op\": %.1f, \"speedup\": %.2f }"
          name interp opt (interp /. opt))
      grafts
  in
  let host = try Unix.gethostname () with _ -> "unknown" in
  let oc = open_out path in
  output_string oc
    (Printf.sprintf
       "{\n  \"schema_version\": 2,\n  \"host\": %S,\n  \"ocaml\": %S,\n  \
        \"results\": [\n"
       host Sys.ocaml_version);
  output_string oc (String.concat ",\n" (List.map (fun r -> "  " ^ r) rows));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Experiment tables.                                                  *)
(* ------------------------------------------------------------------ *)

let known_tables scale =
  let open Graft_report.Experiments in
  [
    ("table1", fun () -> table1 ());
    ("table2", fun () -> table2 scale);
    ("table3", fun () -> table3 ());
    ("table4", fun () -> table4 ());
    ("table5", fun () -> table5 scale);
    ("table6", fun () -> table6 scale);
    ("figure1", fun () -> figure1 scale);
    ("a1", fun () -> ablation_nil scale);
    ("a2", fun () -> ablation_sfi scale);
    ("a3", fun () -> ablation_interp scale);
    ("a4", fun () -> ablation_regvm ());
    ("a5", fun () -> ablation_upcall ());
    ("a6", fun () -> ablation_pfvm scale);
    ("a7", fun () -> ablation_hipec scale);
    ("a8", fun () -> ablation_trace scale);
    ("a9", fun () -> ablation_supervision scale);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let scale =
    if List.mem "full" args then Graft_report.Experiments.Full
    else Graft_report.Experiments.Quick
  in
  if List.mem "opt" args then
    Graft_report.Experiments.extra_techs :=
      [ Technology.Bytecode_opt; Technology.Safe_lang_static ];
  let args =
    List.filter (fun a -> a <> "full" && a <> "quick" && a <> "opt") args
  in
  let tables = known_tables scale in
  match args with
  | [ "micro" ] -> run_micro ()
  | [ "stackvm-json" ] -> stackvm_json ()
  | [] ->
      run_micro ();
      List.iter
        (fun (_, f) -> print_string (Graft_report.Experiments.render (f ())))
        tables
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) tables with
          | Some f -> print_string (Graft_report.Experiments.render (f ()))
          | None ->
              prerr_endline ("unknown table: " ^ name);
              exit 2)
        names
