(* graftkit command-line interface.

   Subcommands:
     tables    regenerate the paper's tables/figure and the ablations
     gel       compile and run a GEL graft from a file
     script    run a Tcl-like graft script from a file
     tech      list extension technologies and trust models
     measure   run the host measurements (signal / disk / fault)
     trace     run a canned kernel scenario under the Graftscope tracer
     profile   per-opcode profile of a GEL graft across the VM tiers
     protect   run the Graftjail saboteurs and print the protection matrix
     jit       inspect the Graftjit compilation of a GEL graft
*)

open Cmdliner
open Graft_core

(* ---------- tables ---------- *)

let scale_conv =
  let parse = function
    | "quick" -> Ok Graft_report.Experiments.Quick
    | "full" -> Ok Graft_report.Experiments.Full
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|full)" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | Graft_report.Experiments.Quick -> "quick"
      | Graft_report.Experiments.Full -> "full")
  in
  Arg.conv (parse, print)

let known_tables scale =
  let open Graft_report.Experiments in
  [
    ("table1", fun () -> table1 ());
    ("table2", fun () -> table2 scale);
    ("table3", fun () -> table3 ());
    ("table4", fun () -> table4 ());
    ("table5", fun () -> table5 scale);
    ("table6", fun () -> table6 scale);
    ("figure1", fun () -> figure1 scale);
    ("a1", fun () -> ablation_nil scale);
    ("a2", fun () -> ablation_sfi scale);
    ("a3", fun () -> ablation_interp scale);
    ("a4", fun () -> ablation_regvm ());
    ("a5", fun () -> ablation_upcall ());
    ("a6", fun () -> ablation_pfvm scale);
    ("a7", fun () -> ablation_hipec scale);
    ("a8", fun () -> ablation_trace scale);
    ("a9", fun () -> ablation_supervision scale);
    ("a10", fun () -> ablation_metrics scale);
    (* A14 lives in graft_slo (the serve harness depends on the report
       library, so the report library can't call serve). *)
    ("a14", fun () -> Graft_slo.Flight.ablation scale);
  ]

let tables_cmd =
  let scale =
    Arg.(value & opt scale_conv Graft_report.Experiments.Quick
         & info [ "s"; "scale" ] ~doc:"Experiment scale: quick or full.")
  in
  let only =
    Arg.(value & pos_all string []
         & info [] ~docv:"TABLE"
             ~doc:"Tables to run (table1..table6, figure1, a1..a14); all when omitted.")
  in
  let run scale only =
    let available = known_tables scale in
    let selected =
      if only = [] then List.map snd available
      else
        List.map
          (fun name ->
            match List.assoc_opt (String.lowercase_ascii name) available with
            | Some f -> f
            | None ->
                prerr_endline ("unknown table: " ^ name);
                exit 2)
          only
    in
    List.iter
      (fun f -> print_string (Graft_report.Experiments.render (f ())))
      selected
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables, figure, and ablations")
    Term.(const run $ scale $ only)

(* ---------- gel ---------- *)

let tech_conv =
  let parse s =
    match Technology.of_name s with
    | Some t -> Ok t
    | None -> Error (`Msg ("unknown technology " ^ s))
  in
  Arg.conv (parse, fun fmt t -> Format.pp_print_string fmt (Technology.name t))

let gel_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.gel")
  in
  let entry =
    Arg.(value & opt string "main" & info [ "e"; "entry" ] ~doc:"Entry function.")
  in
  let args =
    Arg.(value & opt_all int [] & info [ "a"; "arg" ] ~doc:"Integer argument (repeatable).")
  in
  let tech =
    Arg.(value & opt tech_conv Technology.Ast_interp
         & info [ "t"; "tech" ]
             ~doc:"Execution technology: ast-interp, bytecode-vm, sfi-wj, sfi-full.")
  in
  let fuel =
    Arg.(value & opt int 10_000_000 & info [ "fuel" ] ~doc:"CPU quantum (abstract units).")
  in
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Dump IR and VM code, do not run.") in
  let optimize =
    Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the IR optimizer.")
  in
  let run file entry args tech fuel dump optimize =
    let src = In_channel.with_open_text file In_channel.input_all in
    match Graft_gel.Gel.compile ~optimize src with
    | Error e ->
        prerr_endline ("compile error: " ^ Graft_gel.Srcloc.to_string e);
        exit 1
    | Ok prog -> (
        let mem =
          Graft_mem.Memory.create
            (max 1024
               (Graft_core.Runners.next_pow2 (Graft_gel.Link.footprint prog + 64)))
        in
        match Graft_gel.Link.link prog ~mem ~shared:[] ~hosts:[] with
        | Error msg ->
            prerr_endline ("link error: " ^ msg);
            exit 1
        | Ok image ->
            if dump then begin
              print_endline "-- IR --";
              print_string (Graft_gel.Pretty.program prog);
              print_endline "-- stack VM --";
              print_string
                (Graft_stackvm.Disasm.program
                   (Graft_stackvm.Stackvm.load_exn image));
              print_endline "-- stack VM (optimized) --";
              print_string
                (Graft_stackvm.Disasm.program
                   (Graft_stackvm.Stackvm.load_opt_exn image));
              let static_p = Graft_stackvm.Stackvm.load_static_exn image in
              let elided, total = Graft_stackvm.Stackvm.elision_stats static_p in
              Printf.printf
                "-- stack VM (static checks: %d of %d checks elided) --\n"
                elided total;
              print_string (Graft_stackvm.Disasm.program static_p);
              print_endline "-- register VM (SFI write+jump) --";
              print_string
                (Graft_regvm.Disasm.program (Graft_regvm.Regvm.load_exn image))
            end
            else begin
              let argv = Array.of_list args in
              let show = function
                | Ok v -> Printf.printf "%d\n" v
                | Error (`Fault f) ->
                    Printf.printf "fault: %s\n" (Graft_mem.Fault.to_string f);
                    exit 1
                | Error (`Bad_entry m) ->
                    prerr_endline m;
                    exit 2
              in
              match tech with
              | Technology.Ast_interp ->
                  show (Graft_gel.Interp.run image ~entry ~args:argv ~fuel)
              | Technology.Bytecode_vm ->
                  show
                    (Graft_stackvm.Vm.run
                       (Graft_stackvm.Stackvm.load_exn image)
                       ~entry ~args:argv ~fuel)
              | Technology.Bytecode_opt ->
                  show
                    (Graft_stackvm.Vm.run_opt
                       (Graft_stackvm.Stackvm.load_opt_exn image)
                       ~entry ~args:argv ~fuel)
              | Technology.Safe_lang_static ->
                  show
                    (Graft_stackvm.Vm.run
                       (Graft_stackvm.Stackvm.load_static_exn image)
                       ~entry ~args:argv ~fuel)
              | Technology.Jit ->
                  show
                    (Graft_jit.Jit.run
                       (Graft_jit.Jit.load_exn image)
                       ~entry ~args:argv ~fuel)
              | Technology.Sfi_write_jump | Technology.Sfi_full ->
                  let protection =
                    if tech = Technology.Sfi_full then Graft_regvm.Program.Full
                    else Graft_regvm.Program.Write_jump
                  in
                  let p = Graft_regvm.Regvm.load_exn ~protection image in
                  (match Graft_regvm.Machine.run p ~entry ~args:argv ~fuel with
                  | Ok o -> Printf.printf "%d\n" o.Graft_regvm.Machine.value
                  | Error (`Fault f) ->
                      Printf.printf "fault: %s\n" (Graft_mem.Fault.to_string f);
                      exit 1
                  | Error (`Bad_entry m) ->
                      prerr_endline m;
                      exit 2)
              | t ->
                  prerr_endline
                    ("technology " ^ Technology.name t
                   ^ " does not execute GEL files");
                  exit 2
            end)
  in
  Cmd.v
    (Cmd.info "gel" ~doc:"Compile and run a GEL graft")
    Term.(const run $ file $ entry $ args $ tech $ fuel $ dump $ optimize)

(* ---------- check ---------- *)

let check_cmd =
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE.gel"
             ~doc:"GEL sources to analyze (any number).")
  in
  let entries =
    Arg.(value & opt_all string []
         & info [ "e"; "entry" ]
             ~doc:"Entry-point function (repeatable). Enables the \
                   unreachable-function check.")
  in
  let werror =
    Arg.(value & flag
         & info [ "werror" ] ~doc:"Exit non-zero if any warning is emitted.")
  in
  let builtin =
    Arg.(value & flag
         & info [ "builtin" ]
             ~doc:"Also analyze the built-in grafts (evict, md5, logdisk, \
                   packet filter) at representative sizes.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit machine-readable diagnostics (the shared JSON \
                   envelope) instead of text; exit-code semantics are \
                   unchanged.")
  in
  let run files entries werror builtin json =
    let json_escape s =
      let b = Buffer.create (String.length s) in
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | '\t' -> Buffer.add_string b "\\t"
          | c when Char.code c < 0x20 ->
              Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s;
      Buffer.contents b
    in
    let warnings = ref 0 in
    (* (label, diagnostics) per analyzed source; a diagnostic is
       (line, col, severity, kind, message). *)
    let reports = ref [] in
    let check_source label ~entries src =
      let diags =
        match Graft_gel.Gel.compile_located src with
        | Error e ->
            incr warnings;
            [
              ( e.Graft_gel.Srcloc.pos.Graft_gel.Srcloc.line,
                e.Graft_gel.Srcloc.pos.Graft_gel.Srcloc.col,
                "error",
                "compile",
                e.Graft_gel.Srcloc.msg );
            ]
        | Ok (prog, meta) ->
            let entries = if entries = [] then None else Some entries in
            List.map
              (fun (d : Graft_analysis.Analyze.diag) ->
                incr warnings;
                ( d.Graft_analysis.Analyze.dpos.Graft_gel.Srcloc.line,
                  d.Graft_analysis.Analyze.dpos.Graft_gel.Srcloc.col,
                  "warning",
                  d.Graft_analysis.Analyze.dkind,
                  d.Graft_analysis.Analyze.dmsg ))
              (Graft_analysis.Analyze.check ?entries prog meta)
      in
      reports := (label, diags) :: !reports;
      if not json then
        List.iter
          (fun (line, col, severity, kind, msg) ->
            if severity = "error" then
              Printf.printf "%s: error: line %d, col %d: %s\n" label line col
                msg
            else
              Printf.printf "%s:%d:%d: warning: %s [%s]\n" label line col msg
                kind)
          diags
    in
    List.iter
      (fun file ->
        let src = In_channel.with_open_text file In_channel.input_all in
        check_source file ~entries src)
      files;
    if builtin then begin
      let module G = Graft_grafts.Gel_sources in
      List.iter
        (fun (label, entries, src) -> check_source label ~entries src)
        [
          ( "builtin:evict",
            [ "contains"; "choose" ],
            G.evict ~heap_cells:256 );
          ("builtin:md5", [ "run" ], G.md5 ~data_cells:2048);
          ( "builtin:logdisk",
            [ "reset"; "map_write"; "lookup" ],
            G.logdisk ~nblocks:64 );
          ( "builtin:packet-filter",
            [ "accept" ],
            G.packet_filter ~window_cells:256 ~protocol:6 ~port:80 );
          ( "builtin:demux",
            [ "demux" ],
            G.demux ~window_cells:256 ~protocol:6 ~marker:0x42 );
          ("builtin:hotset", [ "touch"; "hot" ], G.hotset);
        ]
    end;
    if json then begin
      let diag_json (line, col, severity, kind, msg) =
        Printf.sprintf
          "{\"line\":%d,\"col\":%d,\"severity\":\"%s\",\"kind\":\"%s\",\"message\":\"%s\"}"
          line col (json_escape severity) (json_escape kind) (json_escape msg)
      in
      let file_json (label, diags) =
        Printf.sprintf "{\"file\":\"%s\",\"diagnostics\":[%s]}"
          (json_escape label)
          (String.concat "," (List.map diag_json diags))
      in
      print_endline
        (Graft_report.Envelope.wrap ~schema_version:3
           (Printf.sprintf "\"tool\":\"check\",\"werror\":%b,\"warnings\":%d,\"files\":[%s]"
              werror !warnings
              (String.concat ","
                 (List.map file_json (List.rev !reports)))))
    end
    else if !warnings = 0 then print_endline "no warnings";
    if !warnings > 0 && werror then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically analyze GEL grafts (provable out-of-bounds accesses, \
             guaranteed division by zero, unreachable code, unused locals \
             and functions)")
    Term.(const run $ files $ entries $ werror $ builtin $ json)

(* ---------- script ---------- *)

let script_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.tcl") in
  let fuel =
    Arg.(value & opt int 50_000_000 & info [ "fuel" ] ~doc:"CPU quantum.")
  in
  let run file fuel =
    let src = In_channel.with_open_text file In_channel.input_all in
    let mem = Graft_mem.Memory.create 65536 in
    let t = Graft_script.Script.create ~fuel mem in
    Graft_script.Script.bind_command t ~name:"puts" (fun _ args ->
        print_endline (String.concat " " args);
        "");
    match Graft_script.Script.eval t src with
    | Ok v ->
        if v <> "" then print_endline v
    | Error f ->
        prerr_endline ("fault: " ^ Graft_mem.Fault.to_string f);
        exit 1
  in
  Cmd.v
    (Cmd.info "script" ~doc:"Run a Tcl-like graft script")
    Term.(const run $ file $ fuel)

(* ---------- tech ---------- *)

let tech_cmd =
  let run () =
    let t =
      Graft_util.Tablefmt.create
        [| "Name"; "Paper column"; "Trust model"; "Can crash kernel" |]
    in
    List.iter
      (fun tech ->
        Graft_util.Tablefmt.add_row t
          [|
            Technology.name tech;
            Technology.paper_name tech;
            Technology.trust_name (Technology.trust tech);
            (if Technology.can_crash_kernel tech then "YES" else "no");
          |])
      Technology.all;
    Graft_util.Tablefmt.print t
  in
  Cmd.v (Cmd.info "tech" ~doc:"List extension technologies") Term.(const run $ const ())

(* ---------- measure ---------- *)

let measure_cmd =
  let what =
    Arg.(value & pos 0 string "all" & info [] ~docv:"WHAT" ~doc:"signal | disk | fault | all")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")
  in
  let run what json =
    let module R = Graft_stats.Robust in
    let est_fields key (e : R.estimate) =
      Printf.sprintf
        "\"%s\":%.3e,\"%s_ci95_lo\":%.3e,\"%s_ci95_hi\":%.3e,\"%s_cv\":%.4f"
        key e.R.median key e.R.ci95_lo key e.R.ci95_hi key e.R.cv
    in
    let signal_json () =
      let r = Graft_measure.Signalbench.measure () in
      Printf.sprintf
        "\"signal\":{%s,\"post_only_s\":%.3e,\"upcall_estimate_s\":%.3e,\"rounds\":%d,\"group_size\":%d}"
        (est_fields "per_signal_s" r.Graft_measure.Signalbench.per_signal_s)
        r.Graft_measure.Signalbench.post_only_s
        (Graft_measure.Signalbench.upcall_estimate_s r)
        r.Graft_measure.Signalbench.rounds
        r.Graft_measure.Signalbench.group_size
    in
    let disk_json () =
      let r = Graft_measure.Diskbench.measure () in
      Printf.sprintf "\"disk\":{%s,\"mb_access_s\":%.3e}"
        (est_fields "bandwidth_bytes_per_s"
           r.Graft_measure.Diskbench.bandwidth_bytes_per_s)
        (Graft_measure.Diskbench.access_time_s r (1024 * 1024))
    in
    let fault_json () =
      let r = Graft_measure.Faultbench.measure () in
      Printf.sprintf "\"fault\":{%s,\"pages\":%d}"
        (est_fields "per_fault_s" r.Graft_measure.Faultbench.per_fault_s)
        r.Graft_measure.Faultbench.pages
    in
    let signal () =
      let r = Graft_measure.Signalbench.measure () in
      Printf.printf "signal handling: %s (post-only baseline %s, %d rounds of %d signals)\n"
        (R.pp_percall r.Graft_measure.Signalbench.per_signal_s)
        (Graft_util.Timer.pp_seconds r.Graft_measure.Signalbench.post_only_s)
        r.Graft_measure.Signalbench.rounds r.Graft_measure.Signalbench.group_size;
      Printf.printf "upcall estimate: %s\n"
        (Graft_util.Timer.pp_seconds (Graft_measure.Signalbench.upcall_estimate_s r))
    in
    let disk () =
      let r = Graft_measure.Diskbench.measure () in
      Printf.printf "disk write bandwidth: %.1f MB/s (1MB in %s)\n"
        (r.Graft_measure.Diskbench.bandwidth_bytes_per_s.R.median /. 1048576.0)
        (Graft_util.Timer.pp_seconds
           (Graft_measure.Diskbench.access_time_s r (1024 * 1024)))
    in
    let fault () =
      let r = Graft_measure.Faultbench.measure () in
      Printf.printf "page fault (mmap touch): %s over %d pages\n"
        (R.pp_percall r.Graft_measure.Faultbench.per_fault_s)
        r.Graft_measure.Faultbench.pages
    in
    let sections =
      match what with
      | "signal" -> [ (signal, signal_json) ]
      | "disk" -> [ (disk, disk_json) ]
      | "fault" -> [ (fault, fault_json) ]
      | "all" -> [ (signal, signal_json); (disk, disk_json); (fault, fault_json) ]
      | s ->
          prerr_endline ("unknown measurement " ^ s);
          exit 2
    in
    if json then begin
      Graft_metrics.enable ();
      let bodies = List.map (fun (_, j) -> j ()) sections in
      Graft_metrics.disable ();
      print_endline
        (Graft_report.Envelope.wrap ~schema_version:3
           (String.concat ","
              (bodies @ [ "\"metrics\":" ^ Graft_metrics.to_json () ])))
    end
    else List.iter (fun (p, _) -> p ()) sections
  in
  Cmd.v (Cmd.info "measure" ~doc:"Host measurements") Term.(const run $ what $ json)

(* ---------- trace ---------- *)

let trace_cmd =
  let graft =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"GRAFT"
             ~doc:"Scenario to trace: md5 | evict | logdisk | demux | \
                   hotset | all.")
  in
  let serve =
    Arg.(value & flag
         & info [ "serve" ]
             ~doc:"Trace a smoke-sized Graftwatch serve run with Graftlens \
                   causal ids instead of a canned scenario: the Chrome \
                   export carries one process per domain and a trace_id \
                   arg on every span an op touched.")
  in
  let serve_domains =
    Arg.(value & opt int 2
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains for --serve (one Chrome process each).")
  in
  let format =
    Arg.(value
         & opt
             (enum
                [
                  ("chrome", `Chrome); ("folded", `Folded);
                  ("summary", `Summary); ("summary-json", `Summary_json);
                ])
             `Chrome
         & info [ "f"; "format" ]
             ~doc:"Output format: chrome (trace-event JSON for Perfetto), \
                   folded (flamegraph stacks), summary, or summary-json.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write output to $(docv) instead of stdout.")
  in
  let capacity =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~doc:"Ring-buffer capacity (events).")
  in
  let run graft serve serve_domains format out capacity =
    let emit body =
      match out with
      | None -> print_string body
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc body)
    in
    if serve then begin
      (* Graftlens end to end: a smoke serve run with causal tracing,
         exported as one Chrome process per domain. *)
      if format <> `Chrome then begin
        prerr_endline "trace: --serve supports only --format=chrome";
        exit 2
      end;
      let r =
        Graft_slo.Serve.run
          { Graft_slo.Serve.smoke with lens = true; domains = serve_domains }
      in
      match r.Graft_slo.Serve.r_lens with
      | None -> assert false
      | Some lo ->
          emit
            (Graft_trace.Export.chrome_json_of
               ~extra:(Graft_report.Envelope.fields ~schema_version:3)
               (List.map
                  (fun (k, evs, dropped) ->
                    Graft_trace.Export.
                      {
                        p_pid = k + 1;
                        p_name = Printf.sprintf "domain-%d" k;
                        p_events = evs;
                        p_dropped = dropped;
                      })
                  lo.Graft_slo.Serve.lo_shards))
    end
    else begin
      let scenario =
        match List.assoc_opt graft Graft_report.Scenarios.by_name with
        | Some f -> f
        | None ->
            prerr_endline
              ("unknown trace scenario: " ^ graft
             ^ " (md5|evict|logdisk|demux|hotset|all)");
            exit 2
      in
      (* sample=1: a one-shot scenario wants every span, not the
         steady-state sampling the overhead bench uses. *)
      Graft_trace.Trace.enable ~capacity ~sample:1 ();
      scenario ();
      let extra = Graft_report.Envelope.fields ~schema_version:3 in
      let body =
        match format with
        | `Chrome -> Graft_trace.Export.chrome_json ~extra ()
        | `Folded -> Graft_trace.Export.folded ()
        | `Summary -> Graft_trace.Export.summary ()
        | `Summary_json -> Graft_trace.Export.summary_json ~extra ()
      in
      Graft_trace.Trace.disable ();
      emit body
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a canned kernel scenario (or, with --serve, a Graftlens \
             serve run) under the Graftscope tracer and export the trace")
    Term.(const run $ graft $ serve $ serve_domains $ format $ out $ capacity)

(* ---------- protect ---------- *)

let protect_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the matrix as deterministic JSON (for CI golden \
                   comparison) instead of text.")
  in
  let run json =
    let cells = Graft_faultinject.Matrix.build () in
    let demo = Graft_faultinject.Matrix.run_fallback_demo () in
    if json then
      print_endline (Graft_faultinject.Matrix.to_json cells demo)
    else begin
      print_string (Graft_faultinject.Matrix.render cells);
      print_endline (Graft_faultinject.Matrix.render_demo demo)
    end;
    let bad = Graft_faultinject.Matrix.mismatches cells in
    List.iter
      (fun (c : Graft_faultinject.Matrix.cell) ->
        Printf.eprintf "MISMATCH %s x %s: predicted %s, observed %s (%s)\n"
          (Graft_core.Technology.name c.Graft_faultinject.Matrix.tech)
          (Graft_faultinject.Faultinject.class_name
             c.Graft_faultinject.Matrix.fault)
          (Graft_faultinject.Sabotage.outcome_name
             c.Graft_faultinject.Matrix.predicted)
          (Graft_faultinject.Sabotage.outcome_name
             c.Graft_faultinject.Matrix.observed.Graft_faultinject.Sabotage
               .outcome)
          c.Graft_faultinject.Matrix.observed.Graft_faultinject.Sabotage.detail)
      bad;
    if demo.Graft_faultinject.Matrix.panicked then
      prerr_endline "MISMATCH fallback demo: kernel panicked";
    if bad <> [] || demo.Graft_faultinject.Matrix.panicked then exit 1
  in
  Cmd.v
    (Cmd.info "protect"
       ~doc:"Run the Graftjail saboteurs and print the protection matrix: \
             the observed containment of each fault class under each \
             technology, checked against the paper's predictions. Exits \
             nonzero on any mismatch.")
    Term.(const run $ json)

(* ---------- profile ---------- *)

let profile_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.gel")
  in
  let entry =
    Arg.(value & opt string "main" & info [ "e"; "entry" ] ~doc:"Entry function.")
  in
  let args =
    Arg.(value & opt_all int []
         & info [ "a"; "arg" ] ~doc:"Integer argument (repeatable).")
  in
  let fuel =
    Arg.(value & opt int 10_000_000
         & info [ "fuel" ] ~doc:"CPU quantum per entry (abstract units).")
  in
  let top =
    Arg.(value & opt int 12 & info [ "top" ] ~doc:"Rows in the hot-spot table.")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "r"; "repeat" ]
             ~doc:"Run the entry this many times per tier.")
  in
  let run file entry args fuel top repeat =
    let src = In_channel.with_open_text file In_channel.input_all in
    match Graft_gel.Gel.compile ~optimize:false src with
    | Error e ->
        prerr_endline ("compile error: " ^ Graft_gel.Srcloc.to_string e);
        exit 1
    | Ok prog ->
        let argv = Array.of_list args in
        (* Fresh image per tier: the program mutates its own memory. *)
        let fresh_image () =
          let mem =
            Graft_mem.Memory.create
              (max 1024
                 (Graft_core.Runners.next_pow2 (Graft_gel.Link.footprint prog + 64)))
          in
          match Graft_gel.Link.link prog ~mem ~shared:[] ~hosts:[] with
          | Error msg ->
              prerr_endline ("link error: " ^ msg);
              exit 1
          | Ok image -> image
        in
        let report label prof result =
          let total_fuel = Graft_trace.Opprof.total_fuel prof in
          Printf.printf "== %s: %d ops, %d fuel ==\n" label
            (Graft_trace.Opprof.total_count prof)
            total_fuel;
          (match result with
          | Ok v -> Printf.printf "result: %d\n" v
          | Error (`Fault f) ->
              Printf.printf "fault: %s\n" (Graft_mem.Fault.to_string f)
          | Error (`Bad_entry m) ->
              prerr_endline m;
              exit 2);
          let t =
            Graft_util.Tablefmt.create [| "opcode"; "count"; "fuel"; "fuel%" |]
          in
          List.iter
            (fun (name, count, fl) ->
              Graft_util.Tablefmt.add_row t
                [|
                  name;
                  string_of_int count;
                  string_of_int fl;
                  Printf.sprintf "%.1f"
                    (100.0 *. float_of_int fl /. float_of_int (max 1 total_fuel));
                |])
            (Graft_trace.Opprof.top prof ~n:top);
          Graft_util.Tablefmt.print t;
          List.iter
            (fun (range, c) -> Printf.printf "fuel/entry %-14s %d\n" range c)
            (Graft_trace.Histo.rows (Graft_trace.Opprof.runs prof));
          print_newline ()
        in
        let repeated f =
          let last = ref (f ()) in
          for _ = 2 to repeat do
            last := f ()
          done;
          !last
        in
        (let prof =
           Graft_trace.Opprof.create ~names:Graft_stackvm.Opcode.class_names
         in
         let s =
           Graft_stackvm.Vm.create_session ~profile:prof
             (Graft_stackvm.Stackvm.load_exn (fresh_image ()))
         in
         report "bytecode-vm" prof
           (repeated (fun () ->
                Graft_stackvm.Vm.run_session s ~entry ~args:argv ~fuel)));
        (let prof =
           Graft_trace.Opprof.create ~names:Graft_stackvm.Opcode.class_names
         in
         let s =
           Graft_stackvm.Vm.create_session ~profile:prof
             (Graft_stackvm.Stackvm.load_opt_exn (fresh_image ()))
         in
         report "bytecode-opt" prof
           (repeated (fun () ->
                Graft_stackvm.Vm.run_session_opt s ~entry ~args:argv ~fuel)));
        (let prof =
           Graft_trace.Opprof.create ~names:Graft_stackvm.Opcode.class_names
         in
         let s =
           Graft_jit.Jit.create_session ~profile:prof
             (Graft_jit.Jit.load_exn (fresh_image ()))
         in
         report "jit" prof
           (repeated (fun () ->
                Graft_jit.Jit.run_session s ~entry ~args:argv ~fuel)));
        let prof =
          Graft_trace.Opprof.create ~names:Graft_regvm.Isa.class_names
        in
        let s =
          Graft_regvm.Machine.create_session ~profile:prof
            (Graft_regvm.Regvm.load_exn (fresh_image ()))
        in
        report "regvm (sfi-wj)" prof
          (Result.map
             (fun o -> o.Graft_regvm.Machine.value)
             (repeated (fun () ->
                  Graft_regvm.Machine.run_session s ~entry ~args:argv ~fuel)))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-opcode execution profile of a GEL graft across the VM tiers")
    Term.(const run $ file $ entry $ args $ fuel $ top $ repeat)

(* ---------- jit ---------- *)

let jit_dump_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.gel")
  in
  let run file =
    let src = In_channel.with_open_text file In_channel.input_all in
    match Graft_gel.Gel.compile ~optimize:false src with
    | Error e ->
        prerr_endline ("compile error: " ^ Graft_gel.Srcloc.to_string e);
        exit 1
    | Ok prog -> (
        let mem =
          Graft_mem.Memory.create
            (max 1024
               (Graft_core.Runners.next_pow2 (Graft_gel.Link.footprint prog + 64)))
        in
        match Graft_gel.Link.link prog ~mem ~shared:[] ~hosts:[] with
        | Error msg ->
            prerr_endline ("link error: " ^ msg);
            exit 1
        | Ok image -> (
            match Graft_jit.Jit.load image with
            | Error msg ->
                prerr_endline ("jit load error: " ^ msg);
                exit 1
            | Ok t ->
                let elided, total = Graft_jit.Jit.elision_stats t in
                Printf.printf
                  "-- Graftjit plan (%d of %d checks elided at compile time) \
                   --\n"
                  elided total;
                print_string (Graft_jit.Jit.describe t)))
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Print the closure-threaded compilation plan: basic blocks, \
             entry stack heights, the per-instruction closure listing, and \
             which bounds/divisor checks the verifier's interval proofs \
             allowed the compiler to elide")
    Term.(const run $ file)

let jit_cmd =
  let default = Term.(ret (const (`Help (`Pager, Some "jit")))) in
  Cmd.group ~default
    (Cmd.info "jit"
       ~doc:"Inspect the Graftjit tier: how a GEL graft compiles to \
             closure-threaded code")
    [ jit_dump_cmd ]

(* ---------- bench ---------- *)

let bench_cmd =
  let scale =
    Arg.(value & opt scale_conv Graft_report.Experiments.Quick
         & info [ "s"; "scale" ] ~doc:"Harness scale: quick or full.")
  in
  let baseline =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Baseline JSON (v2, v3 or v4) to compare against.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit nonzero if any graft regressed vs the baseline \
                   (CI-disjoint AND median moved beyond the threshold).")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save-baseline" ] ~docv:"FILE"
             ~doc:"Write the fresh results as a v4 baseline to $(docv).")
  in
  let threshold =
    Arg.(value & opt (some float) None
         & info [ "threshold" ] ~docv:"FRAC"
             ~doc:"Override the per-graft regression thresholds (fractional: \
                   0.3 = 30%).")
  in
  let run scale baseline check save threshold =
    let config =
      match scale with
      | Graft_report.Experiments.Quick -> Graft_stats.Harness.quick
      | Graft_report.Experiments.Full -> Graft_stats.Harness.full
    in
    let rows = Graft_report.Benchgate.run_suite ~config () in
    let t =
      Graft_util.Tablefmt.create
        [| "Graft"; "interp"; "opt"; "jit"; "opt-speedup"; "jit-speedup";
           "rounds" |]
    in
    List.iter
      (fun (r : Graft_report.Benchgate.row) ->
        let open Graft_stats.Robust in
        Graft_util.Tablefmt.add_row t
          [|
            r.Graft_report.Benchgate.graft;
            Printf.sprintf "%.1f ns [%.1f, %.1f]"
              r.Graft_report.Benchgate.interp.median
              r.Graft_report.Benchgate.interp.ci95_lo
              r.Graft_report.Benchgate.interp.ci95_hi;
            Printf.sprintf "%.1f ns [%.1f, %.1f]"
              r.Graft_report.Benchgate.opt.median
              r.Graft_report.Benchgate.opt.ci95_lo
              r.Graft_report.Benchgate.opt.ci95_hi;
            Printf.sprintf "%.1f ns [%.1f, %.1f]"
              r.Graft_report.Benchgate.jit.median
              r.Graft_report.Benchgate.jit.ci95_lo
              r.Graft_report.Benchgate.jit.ci95_hi;
            Printf.sprintf "%.2fx"
              (r.Graft_report.Benchgate.interp.median
              /. r.Graft_report.Benchgate.opt.median);
            Printf.sprintf "%.2fx"
              (r.Graft_report.Benchgate.interp.median
              /. r.Graft_report.Benchgate.jit.median);
            string_of_int r.Graft_report.Benchgate.rounds;
          |])
      rows;
    Graft_util.Tablefmt.print t;
    (match save with
    | Some path ->
        Graft_report.Benchgate.save ~path rows;
        Printf.printf "baseline written to %s\n" path
    | None -> ());
    match baseline with
    | None ->
        if check then begin
          prerr_endline "bench: --check requires --baseline FILE";
          exit 2
        end
    | Some path -> (
        match Graft_report.Benchgate.load_baseline path with
        | Error msg ->
            prerr_endline ("bench: " ^ msg);
            exit 2
        | Ok base ->
            let checks =
              Graft_report.Benchgate.gate ?threshold ~baseline:base rows
            in
            List.iter
              (fun c -> print_endline (Graft_report.Benchgate.pp_check c))
              checks;
            if Graft_report.Benchgate.failed checks then begin
              prerr_endline "bench: REGRESSION detected";
              if check then exit 1
            end
            else print_endline "bench: no regressions")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the stack-VM tier benchmark suite with the statistical \
             harness and optionally gate against a saved baseline \
             (noise-aware: a regression requires disjoint 95% CIs and a \
             median move beyond the per-graft threshold)")
    Term.(const run $ scale $ baseline $ check $ save $ threshold)

(* ---------- metrics ---------- *)

let metrics_cmd =
  let scenario =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"SCENARIO"
             ~doc:"Scenario to run with metrics enabled: md5 | evict | \
                   logdisk | demux | hotset | all.")
  in
  let format =
    Arg.(value
         & opt (enum [ ("openmetrics", `Openmetrics); ("json", `Json) ])
             `Openmetrics
         & info [ "f"; "format" ]
             ~doc:"Output format: openmetrics (text exposition) or json.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write output to $(docv) instead of stdout.")
  in
  let run scenario format out =
    let f =
      match List.assoc_opt scenario Graft_report.Scenarios.by_name with
      | Some f -> f
      | None ->
          prerr_endline
            ("unknown metrics scenario: " ^ scenario
           ^ " (md5|evict|logdisk|demux|hotset|all)");
          exit 2
    in
    Graft_metrics.enable ();
    Graft_metrics.reset ();
    f ();
    let body =
      match format with
      | `Openmetrics -> Graft_metrics.to_openmetrics ()
      | `Json ->
          Graft_report.Envelope.wrap ~schema_version:3
            ("\"metrics\":" ^ Graft_metrics.to_json ())
          ^ "\n"
    in
    Graft_metrics.disable ();
    match out with
    | None -> print_string body
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc body)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a canned kernel scenario with the Graftmeter registry \
             enabled and export every metric family as OpenMetrics text or \
             JSON")
    Term.(const run $ scenario $ format $ out)

(* ---------- serve (Graftwatch) ---------- *)

let serve_cmd =
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI-sized run: 8 tenants, 8 simulated seconds.")
  in
  let tenants =
    Arg.(value & opt (some int) None
         & info [ "tenants" ] ~docv:"N" ~doc:"Tenant count (4 grafts each).")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Simulated seconds of traffic.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"OPS"
             ~doc:"Mean per-tenant arrival rate before Zipf skew.")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Workload seed; the whole report is a function of it.")
  in
  let window =
    Arg.(value & opt (some float) None
         & info [ "window" ] ~docv:"SECONDS" ~doc:"SLO window width.")
  in
  let snapshot_every =
    Arg.(value & opt (some float) None
         & info [ "snapshot-every" ] ~docv:"SECONDS"
             ~doc:"Simulated seconds between OpenMetrics snapshots.")
  in
  let faults =
    Arg.(value & opt (some int) None
         & info [ "faults" ] ~docv:"N" ~doc:"Seeded fault arms to inject.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains; tenants are partitioned round-robin by \
                   Zipf rank. The merged report is identical for every N \
                   (except this field itself and trace-ring drop counts).")
  in
  let throughput =
    Arg.(value & flag
         & info [ "throughput" ]
             ~doc:"Scaling mode: run the workload repeatedly at each \
                   --domain-counts value and report ops per wall-second \
                   with robust CIs instead of the SLO report.")
  in
  let domain_counts =
    Arg.(value & opt (list int) [ 1; 2; 4 ]
         & info [ "domain-counts" ] ~docv:"N,N,..."
             ~doc:"Domain counts to sweep in --throughput mode.")
  in
  let reps =
    Arg.(value & opt int 5
         & info [ "reps" ] ~docv:"N"
             ~doc:"Repetitions per domain count in --throughput mode.")
  in
  let lens =
    Arg.(value & flag
         & info [ "lens" ]
             ~doc:"Enable Graftlens causal tracing: every op gets a trace \
                   id propagated through manager, VM, map, and fallback \
                   spans, with tail-based retention and OpenMetrics \
                   exemplars on the latency histogram.")
  in
  let lens_threshold =
    Arg.(value & opt (some int) None
         & info [ "lens-threshold" ] ~docv:"US"
             ~doc:"Tail-retention latency bar in microseconds (default: \
                   the latency SLO). Ops slower than this, or faulted, \
                   keep their full span sets.")
  in
  let flight_dir =
    Arg.(value & opt (some string) None
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:"Flight recorder (implies --lens): if the run pages or \
                   quarantines a graft, dump a deterministic post-mortem \
                   bundle (Chrome trace of retained spans, offending \
                   windows, fault plan, strike ledger) under $(docv).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the full report as enveloped JSON.")
  in
  let snapshots_out =
    Arg.(value & opt (some string) None
         & info [ "snapshots" ] ~docv:"FILE"
             ~doc:"Write the periodic snapshot series as JSON to $(docv).")
  in
  let openmetrics_out =
    Arg.(value & opt (some string) None
         & info [ "openmetrics" ] ~docv:"FILE"
             ~doc:"Write the final OpenMetrics exposition to $(docv).")
  in
  let baseline =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"BENCH_serve.json baseline to compare against.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit nonzero if any gated metric regressed vs the \
                   baseline.")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save-baseline" ] ~docv:"FILE"
             ~doc:"Write the fresh results as a serve baseline to $(docv).")
  in
  let threshold =
    Arg.(value & opt (some float) None
         & info [ "threshold" ] ~docv:"FRAC"
             ~doc:"Override the 0.10 default regression threshold.")
  in
  let run smoke tenants duration rate seed window snapshot_every faults
      domains throughput domain_counts reps lens lens_thr flight_dir
      json snapshots_out openmetrics_out baseline check save threshold =
    let base = if smoke then Graft_slo.Serve.smoke else Graft_slo.Serve.default in
    let cfg =
      Graft_slo.Serve.
        {
          base with
          tenants = Option.value ~default:base.tenants tenants;
          duration_s = Option.value ~default:base.duration_s duration;
          base_rate = Option.value ~default:base.base_rate rate;
          seed = Option.value ~default:base.seed seed;
          window_s = Option.value ~default:base.window_s window;
          snapshot_every_s =
            Option.value ~default:base.snapshot_every_s snapshot_every;
          narms = Option.value ~default:base.narms faults;
          domains = Option.value ~default:base.domains domains;
          lens = lens || flight_dir <> None;
          lens_threshold_us = Option.value ~default:0 lens_thr;
        }
    in
    if throughput then begin
      (* Scaling mode: ops per wall-second vs domain count; --baseline /
         --save-baseline refer to BENCH_throughput.json here. *)
      let report =
        Graft_slo.Throughput.run ~reps ~domain_counts:domain_counts cfg
      in
      if json then print_string (Graft_slo.Throughput.to_json report ^ "\n")
      else print_string (Graft_slo.Throughput.render report);
      (match save with
      | Some path ->
          Graft_slo.Throughput.save ~path report;
          Printf.printf "throughput baseline written to %s\n" path
      | None -> ());
      (match baseline with
      | None ->
          if check then begin
            prerr_endline "serve: --check requires --baseline FILE";
            exit 2
          end
      | Some path -> (
          match Graft_slo.Throughput.load_baseline path with
          | Error msg ->
              prerr_endline ("serve: " ^ msg);
              exit 2
          | Ok b -> (
              match
                Graft_slo.Throughput.gate ?threshold ~baseline:b report
              with
              | Error msg ->
                  prerr_endline ("serve: " ^ msg);
                  exit 2
              | Ok checks ->
                  List.iter
                    (fun c ->
                      print_endline (Graft_slo.Throughput.pp_check c))
                    checks;
                  if Graft_slo.Throughput.passed checks then
                    print_endline "serve: no throughput regressions"
                  else begin
                    prerr_endline "serve: throughput REGRESSION detected";
                    if check then exit 1
                  end)));
      exit 0
    end;
    let r = Graft_slo.Serve.run cfg in
    if json then print_string (Graft_slo.Serve.to_json r ^ "\n")
    else print_string (Graft_slo.Serve.render r);
    (match flight_dir with
    | Some dir -> (
        match Graft_slo.Flight.write ~dir r with
        | [] ->
            prerr_endline
              "serve: flight recorder armed but no trigger (no page alert, \
               nothing quarantined) — no bundle written"
        | files ->
            Printf.eprintf "serve: flight bundle written to %s (%s)\n" dir
              (String.concat ", " files))
    | None -> ());
    (match snapshots_out with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              (Graft_slo.Serve.snapshots_json r ^ "\n"))
    | None -> ());
    (match openmetrics_out with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Graft_metrics.to_openmetrics ()))
    | None -> ());
    (match save with
    | Some path ->
        Graft_slo.Servegate.save ~path r;
        Printf.printf "serve baseline written to %s\n" path
    | None -> ());
    match baseline with
    | None ->
        if check then begin
          prerr_endline "serve: --check requires --baseline FILE";
          exit 2
        end
    | Some path -> (
        match Graft_slo.Servegate.load_baseline path with
        | Error msg ->
            prerr_endline ("serve: " ^ msg);
            exit 2
        | Ok base -> (
            match Graft_slo.Servegate.gate ?threshold ~baseline:base r with
            | Error msg ->
                prerr_endline ("serve: " ^ msg);
                exit 2
            | Ok checks ->
                print_string (Graft_slo.Servegate.render_checks checks);
                if Graft_slo.Servegate.passed checks then
                  print_endline "serve: no regressions"
                else begin
                  prerr_endline "serve: REGRESSION detected";
                  if check then exit 1
                end))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Graftwatch: replay a skewed multi-tenant workload across \
             hundreds of supervised grafts under simulated time, with \
             injected faults, and report time-series SLO telemetry — \
             per-tenant latency percentiles, fairness, error-budget burn, \
             and MTTR. Deterministic in --seed; optionally gate against \
             BENCH_serve.json")
    Term.(
      const run $ smoke $ tenants $ duration $ rate $ seed $ window
      $ snapshot_every $ faults $ domains $ throughput $ domain_counts
      $ reps $ lens $ lens_threshold $ flight_dir $ json $ snapshots_out
      $ openmetrics_out $ baseline $ check $ save $ threshold)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "graftkit" ~version:"1.0.0"
      ~doc:"A comparison of OS extension technologies (USENIX '96 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            tables_cmd; gel_cmd; check_cmd; script_cmd; tech_cmd; measure_cmd;
            trace_cmd; profile_cmd; protect_cmd; bench_cmd; metrics_cmd;
            jit_cmd; serve_cmd;
          ]))
