(** The paper's Prioritization graft: VM page eviction with an
    application hot list (section 3.1 / 5.4).

    The graft receives the head of the kernel's LRU chain and the head
    of the application's hot list, both laid out as (page, next) node
    pairs in a shared cell array (see {!Listlayout}). The measured
    operation — the paper's Table 2 — is checking whether the kernel's
    candidate is on the 64-entry hot list; the full graft then walks
    the LRU chain for the first page not on the hot list. *)

module Make (A : Access.S) = struct
  let name = A.name

  (** [contains cells ~head ~page] walks the hot list. *)
  let contains cells ~head ~page =
    let rec go p =
      p <> 0 && (A.get cells p = page || go (A.get cells (p + 1)))
    in
    go head

  (** [choose_victim cells ~lru_head ~hot_head] returns the first LRU
      page not on the hot list, falling back to the kernel's candidate
      (the LRU head) when every resident page is hot. Returns -1 on an
      empty LRU chain. *)
  let choose_victim cells ~lru_head ~hot_head =
    if lru_head = 0 then -1
    else begin
      let rec go p =
        if p = 0 then A.get cells lru_head
        else begin
          let page = A.get cells p in
          if contains cells ~head:hot_head ~page then
            go (A.get cells (p + 1))
          else page
        end
      in
      go lru_head
    end
end

module Unsafe = Make (Access.Unsafe)
module Checked = Make (Access.Checked)
module Checked_nil = Make (Access.Checked_nil)
module Sfi_wj = Make (Access.Sfi_wj)
module Sfi_full = Make (Access.Sfi_full)
