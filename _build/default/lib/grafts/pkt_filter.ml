(** Packet-filter grafts (paper section 2): classify a packet by
    inspecting its header. The canonical filter used by the benchmarks
    is "ip and <protocol> and dst port <port>".

    As with the other grafts, the native regimes differ only in access
    checks; the specialized BPF-like VM ({!Graft_kernel.Pfvm}) and the
    general-purpose technologies run the same predicate from
    {!Gel_sources.packet_filter} / {!Script_sources.packet_filter}. *)

module Make (A : Access.S) = struct
  let name = A.name

  let be16 pkt off = (A.get_byte pkt off lsl 8) lor A.get_byte pkt (off + 1)

  (** "ip and protocol and dst port". [len] is the packet's true
      length, which can be smaller than the buffer (the SFI regimes
      stage packets into a power-of-two sandbox buffer). *)
  let proto_dst_port ~protocol ~port (pkt : bytes) ~len =
    len >= Graft_kernel.Netpkt.header_bytes
    && be16 pkt 12 = Graft_kernel.Netpkt.ethertype_ip
    && A.get_byte pkt 23 = protocol
    && be16 pkt 36 = port

  (** "ip traffic between hosts a and b", either direction. *)
  let between ~a ~b (pkt : bytes) ~len =
    let be32 off = (be16 pkt off lsl 16) lor be16 pkt (off + 2) in
    len >= Graft_kernel.Netpkt.header_bytes
    && be16 pkt 12 = Graft_kernel.Netpkt.ethertype_ip
    &&
    let s = be32 26 and d = be32 30 in
    (s = a && d = b) || (s = b && d = a)
end

module Unsafe = Make (Access.Unsafe)
module Checked = Make (Access.Checked)
module Checked_nil = Make (Access.Checked_nil)
module Sfi_wj = Make (Access.Sfi_wj)
module Sfi_full = Make (Access.Sfi_full)
