(** The three paper grafts written in the Tcl-like scripting language.

    Scripted grafts reach kernel memory through [kload]/[kstore] on
    windows the kernel binds before evaluation:
    - eviction: [heap] (node pairs, RO);
    - MD5: [data] (bytes, RW for in-place padding), [digest] (16 cells,
      RW), [t] and [s] (constant tables, RO), [x] (16-cell scratch, RW
      — the interpreter has no arrays of its own, as Tcl 3.7 grafts
      would use kernel scratch for bulk state);
    - logical disk: [map] (RW), with globals [nblocks] and [next_free]
      pre-set by the kernel. *)

let evict =
  {|
proc contains {head page} {
  set p $head
  while {$p != 0} {
    if {[kload heap $p] == $page} { return 1 }
    set p [kload heap [expr {$p + 1}]]
  }
  return 0
}

proc choose {lru_head hot_head} {
  if {$lru_head == 0} { return -1 }
  set p $lru_head
  while {$p != 0} {
    if {[contains $hot_head [kload heap $p]] == 0} { return [kload heap $p] }
    set p [kload heap [expr {$p + 1}]]
  }
  return [kload heap $lru_head]
}
|}

let md5 =
  {|
proc rotl {v n} {
  return [expr {(($v << $n) | ($v >> (32 - $n))) & 0xFFFFFFFF}]
}

proc transform {base} {
  global s0 s1 s2 s3
  for {set i 0} {$i < 16} {incr i} {
    set o [expr {$base + 4 * $i}]
    kstore x $i [expr {[kload data $o] | ([kload data [expr {$o + 1}]] << 8) | ([kload data [expr {$o + 2}]] << 16) | ([kload data [expr {$o + 3}]] << 24)}]
  }
  set a $s0
  set b $s1
  set c $s2
  set d $s3
  for {set i 0} {$i < 64} {incr i} {
    if {$i < 16} {
      set f [expr {(($b & $c) | ((~$b) & $d)) & 0xFFFFFFFF}]
      set k $i
    } elseif {$i < 32} {
      set f [expr {(($d & $b) | ((~$d) & $c)) & 0xFFFFFFFF}]
      set k [expr {(5 * $i + 1) % 16}]
    } elseif {$i < 48} {
      set f [expr {$b ^ $c ^ $d}]
      set k [expr {(3 * $i + 5) % 16}]
    } else {
      set f [expr {($c ^ ($b | ((~$d) & 0xFFFFFFFF))) & 0xFFFFFFFF}]
      set k [expr {(7 * $i) % 16}]
    }
    set sum [expr {($a + $f + [kload x $k] + [kload t $i]) & 0xFFFFFFFF}]
    set anew [expr {($b + [rotl $sum [kload s $i]]) & 0xFFFFFFFF}]
    set a $d
    set d $c
    set c $b
    set b $anew
  }
  set s0 [expr {($s0 + $a) & 0xFFFFFFFF}]
  set s1 [expr {($s1 + $b) & 0xFFFFFFFF}]
  set s2 [expr {($s2 + $c) & 0xFFFFFFFF}]
  set s3 [expr {($s3 + $d) & 0xFFFFFFFF}]
}

proc md5run {n} {
  global s0 s1 s2 s3
  set s0 [expr {0x67452301}]
  set s1 [expr {0xefcdab89}]
  set s2 [expr {0x98badcfe}]
  set s3 [expr {0x10325476}]
  set p $n
  kstore data $p 128
  incr p
  while {$p % 64 != 56} {
    kstore data $p 0
    incr p
  }
  set bits [expr {$n * 8}]
  for {set i 0} {$i < 8} {incr i} {
    kstore data $p [expr {($bits >> (8 * $i)) & 255}]
    incr p
  }
  set nblocks [expr {$p / 64}]
  for {set blk 0} {$blk < $nblocks} {incr blk} {
    transform [expr {$blk * 64}]
  }
  set i 0
  foreach_state $s0 0
  foreach_state $s1 4
  foreach_state $s2 8
  foreach_state $s3 12
  return $nblocks
}

proc foreach_state {v off} {
  kstore digest $off [expr {$v & 255}]
  kstore digest [expr {$off + 1}] [expr {($v >> 8) & 255}]
  kstore digest [expr {$off + 2}] [expr {($v >> 16) & 255}]
  kstore digest [expr {$off + 3}] [expr {($v >> 24) & 255}]
}
|}

let logdisk =
  {|
proc ld_reset {} {
  global next_free
  set next_free 0
}

proc map_write {logical} {
  global next_free nblocks
  set phys $next_free
  incr next_free
  if {$next_free >= $nblocks} { set next_free 0 }
  kstore map $logical $phys
  return $phys
}

proc lookup {logical} {
  return [kload map $logical]
}
|}

(** Packet-filter graft for the source interpreter; the kernel binds
    the packet window as [pkt] and calls [accept $len]. *)
let packet_filter ~protocol ~port =
  Printf.sprintf
    {|
proc be16 {off} {
  return [expr {[kload pkt $off] * 256 + [kload pkt [expr {$off + 1}]]}]
}

proc accept {len} {
  if {$len < 38} { return 0 }
  if {[be16 12] != 2048} { return 0 }
  if {[kload pkt 23] != %d} { return 0 }
  if {[be16 36] != %d} { return 0 }
  return 1
}
|}
    protocol port
