(** The paper's Stream graft: MD5 fingerprinting (section 3.2 / 5.5),
    written once as a functor over the access regime so the same code
    is measured as unsafe C, Modula-3 (checked), and SFI.

    Heavy array access and unsigned 32-bit arithmetic, exactly the mix
    the paper calls out; every data-buffer read and block-word access
    goes through the regime. *)

let mask = 0xFFFFFFFF

let t_table =
  Array.init 64 (fun i ->
      int_of_float (Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0)
      land mask)

let s_table =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

module Make (A : Access.S) = struct
  let name = A.name

  type ctx = {
    mutable a : int;
    mutable b : int;
    mutable c : int;
    mutable d : int;
    x : int array;
  }

  let init () =
    {
      a = 0x67452301;
      b = 0xefcdab89;
      c = 0x98badcfe;
      d = 0x10325476;
      x = Array.make 16 0;
    }

  let rotl32 v s = ((v lsl s) lor (v lsr (32 - s))) land mask

  let transform ctx (buf : bytes) off =
    let x = ctx.x in
    for i = 0 to 15 do
      let o = off + (i * 4) in
      A.set x i
        (A.get_byte buf o
        lor (A.get_byte buf (o + 1) lsl 8)
        lor (A.get_byte buf (o + 2) lsl 16)
        lor (A.get_byte buf (o + 3) lsl 24))
    done;
    let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
    for i = 0 to 63 do
      let f, k =
        if i < 16 then (!b land !c) lor (lnot !b land !d), i
        else if i < 32 then (!d land !b) lor (lnot !d land !c), (5 * i + 1) mod 16
        else if i < 48 then !b lxor !c lxor !d, (3 * i + 5) mod 16
        else !c lxor (!b lor (lnot !d land mask)), (7 * i) mod 16
      in
      let f = f land mask in
      let sum = (!a + f + A.get x k + Array.unsafe_get t_table i) land mask in
      let a' = (!b + rotl32 sum (Array.unsafe_get s_table i)) land mask in
      a := !d;
      d := !c;
      c := !b;
      b := a'
    done;
    ctx.a <- (ctx.a + !a) land mask;
    ctx.b <- (ctx.b + !b) land mask;
    ctx.c <- (ctx.c + !c) land mask;
    ctx.d <- (ctx.d + !d) land mask

  (** One-shot digest of [buf]. The trailing partial block and padding
      are staged in a 128-byte tail buffer, as the RFC reference does. *)
  let digest (buf : bytes) : string =
    let ctx = init () in
    let len = Bytes.length buf in
    let nblocks = len / 64 in
    for blk = 0 to nblocks - 1 do
      transform ctx buf (blk * 64)
    done;
    let rem = len - (nblocks * 64) in
    let tail_len = if rem < 56 then 64 else 128 in
    let tail = Bytes.make tail_len '\000' in
    for i = 0 to rem - 1 do
      A.set_byte tail i (A.get_byte buf ((nblocks * 64) + i))
    done;
    A.set_byte tail rem 0x80;
    let bit_len = len * 8 in
    for i = 0 to 7 do
      A.set_byte tail (tail_len - 8 + i) ((bit_len lsr (8 * i)) land 0xFF)
    done;
    transform ctx tail 0;
    if tail_len = 128 then transform ctx tail 64;
    let out = Bytes.create 16 in
    let put off v =
      for i = 0 to 3 do
        Bytes.set out (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
      done
    in
    put 0 ctx.a;
    put 4 ctx.b;
    put 8 ctx.c;
    put 12 ctx.d;
    Bytes.to_string out

  let digest_hex buf = Graft_md5.Md5.to_hex (digest buf)
end

module Unsafe = Make (Access.Unsafe)
module Checked = Make (Access.Checked)
module Checked_nil = Make (Access.Checked_nil)
module Sfi_wj = Make (Access.Sfi_wj)
module Sfi_full = Make (Access.Sfi_full)
