(** The paper's Black Box graft: Logical Disk mapping bookkeeping
    (section 3.3 / 5.6), as a functor over the access regime.

    The policy keeps the logical-to-physical map in a flat cell array
    (one cell per logical block, -1 = unmapped) and allocates physical
    blocks sequentially, which is what converts random writes into
    sequential segment writes. *)

open Graft_kernel

module Make (A : Access.S) = struct
  let name = A.name

  (** [make_policy ~nblocks ()] allocates the map internally. For the
      SFI regimes [nblocks] must be a power of two (the sandbox is the
      map array itself). *)
  let make_policy ~nblocks () : Logdisk.policy =
    let map = Array.make nblocks (-1) in
    let next_free = ref 0 in
    {
      Logdisk.pname = A.name;
      map_write =
        (fun logical ->
          let phys = !next_free in
          next_free := !next_free + 1;
          if !next_free >= nblocks then next_free := 0;
          A.set map logical phys;
          phys);
      lookup = (fun logical -> A.get map logical);
    }
end

module Unsafe = Make (Access.Unsafe)
module Checked = Make (Access.Checked)
module Checked_nil = Make (Access.Checked_nil)
module Sfi_wj = Make (Access.Sfi_wj)
module Sfi_full = Make (Access.Sfi_full)
