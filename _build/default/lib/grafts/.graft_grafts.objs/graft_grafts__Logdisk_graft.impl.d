lib/grafts/logdisk_graft.ml: Access Array Graft_kernel Logdisk
