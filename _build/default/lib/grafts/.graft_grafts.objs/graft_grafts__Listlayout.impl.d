lib/grafts/listlayout.ml: Array Graft_util List
