lib/grafts/access.ml: Array Bytes Char Fault Graft_mem
