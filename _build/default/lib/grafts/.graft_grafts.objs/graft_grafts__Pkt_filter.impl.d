lib/grafts/pkt_filter.ml: Access Graft_kernel
