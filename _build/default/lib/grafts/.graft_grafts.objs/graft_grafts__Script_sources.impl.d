lib/grafts/script_sources.ml: Printf
