lib/grafts/evict.ml: Access
