lib/grafts/md5_graft.ml: Access Array Bytes Char Float Graft_md5
