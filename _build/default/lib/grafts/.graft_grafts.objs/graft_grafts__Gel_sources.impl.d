lib/grafts/gel_sources.ml: Array List Md5_graft Printf String
