(** Shared heap layout for the page-eviction graft.

    Every technology sees the same data structure: linked lists of
    (page, next) node pairs laid out in one flat cell array, with cell
    index 0 reserved as NIL. Node order is shuffled so traversal is a
    genuine pointer chase, as it would be against kernel structures. *)

type t = {
  cells : int array;
  hot_head : int;  (** first node of the application's hot list, or 0 *)
  lru_head : int;  (** first node of the kernel's LRU chain, or 0 *)
}

(** [build ?rng ~cells_len ~hot ~lru ()] lays both lists out in a cell
    array of length [cells_len] (rounded requirement: 1 + 2*(|hot| +
    |lru|) cells). Nodes are placed in shuffled slots when [rng] is
    given. *)
let build ?rng ~cells_len ~(hot : int array) ~(lru : int array) () =
  let nnodes = Array.length hot + Array.length lru in
  if cells_len < 1 + (2 * nnodes) then
    invalid_arg "Listlayout.build: cell array too small";
  let cells = Array.make cells_len 0 in
  (* Node slots at odd cell indices 1, 3, 5, ... (never 0 = NIL). *)
  let slots = Array.init nnodes (fun i -> 1 + (2 * i)) in
  (match rng with
  | Some r -> Graft_util.Prng.shuffle r slots
  | None -> ());
  let next_slot = ref 0 in
  let chain pages =
    let head = ref 0 in
    let tail = ref 0 in
    Array.iter
      (fun page ->
        let node = slots.(!next_slot) in
        incr next_slot;
        cells.(node) <- page;
        cells.(node + 1) <- 0;
        if !head = 0 then head := node else cells.(!tail + 1) <- node;
        tail := node)
      pages;
    !head
  in
  let hot_head = chain hot in
  let lru_head = chain lru in
  { cells; hot_head; lru_head }

(** Pages of a chain in order, for tests. *)
let pages_of_chain cells head =
  let rec go acc p = if p = 0 then List.rev acc else go (cells.(p) :: acc) cells.(p + 1) in
  go [] head
