lib/util/timer.mli: Stats
