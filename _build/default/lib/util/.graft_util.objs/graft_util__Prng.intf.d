lib/util/prng.mli:
