lib/util/stats.mli:
