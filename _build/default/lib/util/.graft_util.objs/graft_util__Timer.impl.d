lib/util/timer.ml: Array Float Int64 Printf Stats Unix
