lib/util/tablefmt.mli:
