lib/util/asciiplot.ml: Array Buffer List Printf String
