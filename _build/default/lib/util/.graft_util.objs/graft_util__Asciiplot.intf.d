lib/util/asciiplot.mli:
