(** Deterministic splitmix64 PRNG.

    Workload generation must be reproducible across runs and
    technologies so that every technology sees the identical request
    stream; the stdlib [Random] state is global and version-dependent,
    so we carry our own. *)

type t

val create : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** [bytes t n] is a fresh buffer of [n] pseudo-random bytes. *)
val bytes : t -> int -> bytes

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** Independent stream derived from the current state. *)
val split : t -> t
