(** Summary statistics over float samples, as used by the paper's tables
    (mean of N runs with standard deviation reported as a percentage of
    the mean). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

(** [summarize samples] computes the summary of a non-empty sample
    array. Raises [Invalid_argument] on an empty array. *)
val summarize : float array -> summary

(** Sample mean. Raises [Invalid_argument] on an empty array. *)
val mean : float array -> float

(** Sample standard deviation (n-1 denominator; 0 for singletons). *)
val stddev : float array -> float

(** [rel_stddev_pct s] is the standard deviation as a percentage of the
    mean, the "(x.x%)" the paper prints next to each time. 0 when the
    mean is 0. *)
val rel_stddev_pct : summary -> float

(** [percentile p samples] for [p] in [0,100], by linear interpolation
    on the sorted samples. *)
val percentile : float -> float array -> float

val median : float array -> float

(** Least-squares fit [y = a +. b *. x]; returns [(a, b)].
    Raises [Invalid_argument] if fewer than two points. *)
val linear_fit : (float * float) array -> float * float

(** Geometric mean of strictly positive samples. *)
val geomean : float array -> float
