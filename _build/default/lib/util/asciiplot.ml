type series = {
  label : string;
  points : (float * float) array;
  glyph : char;
}

let bounds series =
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        s.points)
    series;
  (!xmin, !xmax, !ymin, !ymax)

let render ?(width = 64) ?(height = 20) ?title ?xlabel ?ylabel ?(logy = false)
    series =
  let series =
    List.filter (fun s -> Array.length s.points > 0) series
  in
  if series = [] then "(empty plot)\n"
  else begin
    let ty y = if logy then log10 (max y 1e-12) else y in
    let xmin, xmax, ymin, ymax = bounds series in
    let ymin = ty ymin and ymax = ty ymax in
    let xspan = if xmax = xmin then 1.0 else xmax -. xmin in
    let yspan = if ymax = ymin then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    let plot_point glyph x y =
      let cx =
        int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
      in
      let cy =
        int_of_float ((ty y -. ymin) /. yspan *. float_of_int (height - 1))
      in
      let cy = height - 1 - cy in
      if cx >= 0 && cx < width && cy >= 0 && cy < height then
        grid.(cy).(cx) <- glyph
    in
    let plot_series s =
      (* Linearly interpolate between consecutive points so lines read as
         lines even with few samples. *)
      let n = Array.length s.points in
      for i = 0 to n - 1 do
        let x, y = s.points.(i) in
        plot_point s.glyph x y;
        if i < n - 1 then begin
          let x', y' = s.points.(i + 1) in
          let steps = width in
          for k = 1 to steps - 1 do
            let f = float_of_int k /. float_of_int steps in
            plot_point s.glyph (x +. (f *. (x' -. x))) (y +. (f *. (y' -. y)))
          done
        end
      done
    in
    List.iter plot_series series;
    let buf = Buffer.create 4096 in
    (match title with
    | Some t ->
        Buffer.add_string buf t;
        Buffer.add_char buf '\n'
    | None -> ());
    (match ylabel with
    | Some l ->
        Buffer.add_string buf (l ^ (if logy then " (log scale)" else ""));
        Buffer.add_char buf '\n'
    | None -> ());
    let fmt_tick v =
      let v = if logy then 10.0 ** v else v in
      Printf.sprintf "%10.3g" v
    in
    for row = 0 to height - 1 do
      let yv = ymax -. (float_of_int row /. float_of_int (height - 1) *. yspan) in
      let label =
        if row = 0 || row = height - 1 || row = height / 2 then fmt_tick yv
        else String.make 10 ' '
      in
      Buffer.add_string buf label;
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.init width (fun c -> grid.(row).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s%-10.3g%s%10.3g\n" (String.make 12 ' ') xmin
         (String.make (max 1 (width - 20)) ' ')
         xmax);
    (match xlabel with
    | Some l ->
        Buffer.add_string buf (String.make 12 ' ');
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
    | None -> ());
    List.iter
      (fun s ->
        Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.glyph s.label))
      series;
    Buffer.contents buf
  end
