type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let check_nonempty name samples =
  if Array.length samples = 0 then
    invalid_arg (Printf.sprintf "Stats.%s: empty sample array" name)

let mean samples =
  check_nonempty "mean" samples;
  Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)

let stddev samples =
  check_nonempty "stddev" samples;
  let n = Array.length samples in
  if n < 2 then 0.0
  else begin
    let m = mean samples in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) samples;
    sqrt (!acc /. float_of_int (n - 1))
  end

let percentile p samples =
  check_nonempty "percentile" samples;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median samples = percentile 50.0 samples

let summarize samples =
  check_nonempty "summarize" samples;
  let mn = Array.fold_left min samples.(0) samples in
  let mx = Array.fold_left max samples.(0) samples in
  {
    n = Array.length samples;
    mean = mean samples;
    stddev = stddev samples;
    min = mn;
    max = mx;
    median = median samples;
  }

let rel_stddev_pct s = if s.mean = 0.0 then 0.0 else 100.0 *. s.stddev /. s.mean

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if denom = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let b = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let a = (!sy -. (b *. !sx)) /. nf in
  (a, b)

let geomean samples =
  check_nonempty "geomean" samples;
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
      acc := !acc +. log x)
    samples;
  exp (!acc /. float_of_int (Array.length samples))
