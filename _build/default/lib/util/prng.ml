type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Keep 62 bits so the value is a non-negative OCaml int; modulo bias
     is negligible for bounds << 2^62. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let bytes t n =
  let buf = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set buf i (Char.unsafe_chr (int t 256))
  done;
  buf

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (next t)
