type align = Left | Right | Center

type row = Cells of string array | Sep

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let ncols = Array.length headers in
  if ncols = 0 then invalid_arg "Tablefmt.create: no columns";
  let aligns =
    match aligns with
    | Some a ->
        if Array.length a <> ncols then
          invalid_arg "Tablefmt.create: aligns length mismatch";
        a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  let ncols = Array.length t.headers in
  if Array.length cells > ncols then
    invalid_arg "Tablefmt.add_row: too many cells";
  let padded =
    if Array.length cells = ncols then cells
    else
      Array.init ncols (fun i ->
          if i < Array.length cells then cells.(i) else "")
  in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let note_row = function
    | Sep -> ()
    | Cells cells ->
        Array.iteri
          (fun i c -> widths.(i) <- max widths.(i) (String.length c))
          cells
  in
  List.iter note_row t.rows;
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    for i = 0 to ncols - 1 do
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cells.(i));
      Buffer.add_string buf (if i = ncols - 1 then " |" else " | ")
    done;
    Buffer.add_char buf '\n'
  in
  let emit_sep () =
    Buffer.add_char buf '+';
    for i = 0 to ncols - 1 do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      Buffer.add_char buf '+'
    done;
    Buffer.add_char buf '\n'
  in
  emit_sep ();
  emit_cells t.headers;
  emit_sep ();
  List.iter
    (function Sep -> emit_sep () | Cells cells -> emit_cells cells)
    (List.rev t.rows);
  emit_sep ();
  Buffer.contents buf

let print t = print_string (render t)
