(** Plain-text table rendering for the paper-style result tables. *)

type align = Left | Right | Center

type t

(** [create headers] starts a table with the given column headers.
    Columns default to right alignment except the first (left). *)
val create : ?aligns:align array -> string array -> t

(** Append a data row; short rows are padded with empty cells, long rows
    raise [Invalid_argument]. *)
val add_row : t -> string array -> unit

(** Append a horizontal separator between row groups. *)
val add_sep : t -> unit

(** Render with box-drawing-free ASCII (pipes and dashes). *)
val render : t -> string

(** [print t] renders to stdout with a trailing newline. *)
val print : t -> unit
