(** Minimal ASCII line plots, used to render the paper's Figure 1
    (break-even point vs upcall time) on a terminal. *)

type series = {
  label : string;
  points : (float * float) array;
  glyph : char;
}

(** [render ~width ~height ~title ~xlabel ~ylabel series] draws all
    series on shared axes. Ranges are computed from the data; horizontal
    reference lines can be drawn by two-point series. *)
val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?xlabel:string ->
  ?ylabel:string ->
  ?logy:bool ->
  series list ->
  string
