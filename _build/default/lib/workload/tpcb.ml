(** The paper's model database (section 3.1): a TPC-B-style server over
    a 1,000,000-record, four-level, 50%-full b-tree — one root page,
    four second-level pages, 391 third-level pages, and ~50,000 data
    pages, each third-level page pointing at up to 128 data pages. The
    server maps the database into memory; during a search, reaching a
    third-level page tells it exactly which 128 data pages it will
    touch next — that list is the eviction graft's hot list. *)

type t = {
  root : int;
  l2 : int array;
  l3 : int array;
  l4_children : int array array;  (** per-L3 page, its data pages *)
  npages : int;
}

let default_l3 = 391
let default_children = 128

let create ?(l3_pages = default_l3) ?(children_per_l3 = default_children) () =
  let root = 0 in
  let l2 = Array.init 4 (fun i -> 1 + i) in
  let l3 = Array.init l3_pages (fun i -> 5 + i) in
  let first_l4 = 5 + l3_pages in
  let l4_children =
    Array.init l3_pages (fun i ->
        Array.init children_per_l3 (fun j ->
            first_l4 + (i * children_per_l3) + j))
  in
  let npages = first_l4 + (l3_pages * children_per_l3) in
  { root; l2; l3; l4_children; npages }

(** Pages touched by a keyed lookup landing on the [i]th third-level
    page and its [j]th record page: root, an L2 page, the L3 page, the
    L4 page. *)
let lookup_path t ~l3_index ~child_index =
  if l3_index < 0 || l3_index >= Array.length t.l3 then
    invalid_arg "Tpcb.lookup_path: l3 index";
  let children = t.l4_children.(l3_index) in
  if child_index < 0 || child_index >= Array.length children then
    invalid_arg "Tpcb.lookup_path: child index";
  [| t.root; t.l2.(l3_index * 4 / Array.length t.l3); t.l3.(l3_index);
     children.(child_index) |]

(** A random keyed lookup: the pages it touches and the hot list the
    application would publish on reaching the third level (all of that
    L3 page's children). *)
let random_lookup rng t =
  let l3_index = Graft_util.Prng.int rng (Array.length t.l3) in
  let child_index =
    Graft_util.Prng.int rng (Array.length t.l4_children.(l3_index))
  in
  (lookup_path t ~l3_index ~child_index, t.l4_children.(l3_index))

(** A depth-first non-keyed scan of one third-level page's subtree, as
    in the paper's benchmark: the L3 page then every child in order.
    Returns the page reference string and the hot list. *)
let scan_subtree t ~l3_index =
  if l3_index < 0 || l3_index >= Array.length t.l3 then
    invalid_arg "Tpcb.scan_subtree: l3 index";
  let children = t.l4_children.(l3_index) in
  let refs = Array.make (1 + Array.length children) 0 in
  refs.(0) <- t.l3.(l3_index);
  Array.blit children 0 refs 1 (Array.length children);
  (refs, children)

(** Probability a needed page is already cached under the paper's
    sizing — "roughly 64/50,000, or once every 781 times". *)
let hit_probability t ~avg_hot =
  float_of_int avg_hot
  /. float_of_int (Array.length t.l3 * Array.length t.l4_children.(0))
