lib/workload/skew.ml: Array Graft_util
