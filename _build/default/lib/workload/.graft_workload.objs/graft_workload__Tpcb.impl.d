lib/workload/tpcb.ml: Array Graft_util
