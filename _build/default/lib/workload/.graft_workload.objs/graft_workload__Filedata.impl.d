lib/workload/filedata.ml: Bytes Char Graft_util
