(** Synthetic file contents for the Stream graft experiments:
    incompressible (random), compressible (runs of repeated text), and
    a mixed profile resembling an executable image — the thing the
    paper's fingerprint graft protects from viruses. *)

let random rng n = Graft_util.Prng.bytes rng n

(** Text-like data with long runs: highly RLE-compressible. *)
let compressible rng n =
  let out = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    let run = 4 + Graft_util.Prng.int rng 60 in
    let c = Char.chr (97 + Graft_util.Prng.int rng 26) in
    let run = min run (n - !pos) in
    Bytes.fill out !pos run c;
    pos := !pos + run
  done;
  out

(** Half structured (zero-padded sections), half code-like entropy. *)
let executable_like rng n =
  let out = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    let section = min (256 + Graft_util.Prng.int rng 1024) (n - !pos) in
    if Graft_util.Prng.bool rng then Bytes.fill out !pos section '\000'
    else
      for i = !pos to !pos + section - 1 do
        Bytes.unsafe_set out i (Char.unsafe_chr (Graft_util.Prng.int rng 256))
      done;
    pos := !pos + section
  done;
  out
