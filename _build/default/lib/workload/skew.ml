(** Skewed access generators for the Logical Disk workload (paper
    section 5.6: 80% of write requests for 20% of the blocks) and a
    general Zipf-like generator for cache studies. *)

(** [hot_cold rng ~n ~hot_fraction ~hot_weight] draws block numbers in
    [0, n): with probability [hot_weight] from the first
    [hot_fraction] of the space. The paper's 80/20 is
    [~hot_fraction:0.2 ~hot_weight:0.8]. *)
let hot_cold rng ~n ~hot_fraction ~hot_weight =
  if n <= 1 then invalid_arg "Skew.hot_cold: n <= 1";
  let hot_n = max 1 (int_of_float (float_of_int n *. hot_fraction)) in
  let cold_n = max 1 (n - hot_n) in
  fun () ->
    if Graft_util.Prng.float rng < hot_weight then Graft_util.Prng.int rng hot_n
    else hot_n + Graft_util.Prng.int rng cold_n

let eighty_twenty rng ~n = hot_cold rng ~n ~hot_fraction:0.2 ~hot_weight:0.8

(** An array of [count] draws. *)
let workload gen count = Array.init count (fun _ -> gen ())

(** Zipf(s) over ranks 1..n by inverse-CDF on a precomputed table;
    deterministic given the PRNG. *)
let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Skew.zipf: n <= 0";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun () ->
    let u = Graft_util.Prng.float rng in
    (* Binary search for the first cdf >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
