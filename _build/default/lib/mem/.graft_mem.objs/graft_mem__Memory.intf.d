lib/mem/memory.mli:
