lib/mem/memory.ml: Array Bytes Char Fault List Printf
