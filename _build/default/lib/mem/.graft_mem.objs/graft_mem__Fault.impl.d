lib/mem/fault.ml: Format Printf
