type perm = { read : bool; write : bool }

let perm_rw = { read = true; write = true }
let perm_ro = { read = true; write = false }
let perm_none = { read = false; write = false }

type region = {
  name : string;
  base : int;
  len : int;
  perm : perm;
}

type t = {
  cells : int array;
  (* Per-cell permission bytes: bit 0 = readable, bit 1 = writable.
     Byte arrays keep the per-access check to one load and one test. *)
  perms : Bytes.t;
  mutable regions : region list;
  mutable next_free : int;
}

let perm_byte p =
  Char.chr ((if p.read then 1 else 0) lor if p.write then 2 else 0)

let create size =
  if size < 2 then invalid_arg "Memory.create: size < 2";
  {
    cells = Array.make size 0;
    perms = Bytes.make size '\000';
    regions = [];
    next_free = 1 (* cell 0 reserved as NIL *);
  }

let size t = Array.length t.cells

let set_region_perms t region =
  let byte = perm_byte region.perm in
  Bytes.fill t.perms region.base region.len byte

let alloc_at t ~name ~base ~len ~perm =
  if len <= 0 then invalid_arg "Memory.alloc: len <= 0";
  if base + len > Array.length t.cells then
    invalid_arg
      (Printf.sprintf "Memory.alloc %S: address space exhausted (%d + %d > %d)"
         name base len (Array.length t.cells));
  let region = { name; base; len; perm } in
  t.regions <- region :: t.regions;
  t.next_free <- base + len;
  set_region_perms t region;
  region

let alloc t ~name ~len ~perm = alloc_at t ~name ~base:t.next_free ~len ~perm

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let alloc_pow2 t ~name ~len ~perm =
  let len = next_pow2 len 1 in
  let base = (t.next_free + len - 1) / len * len in
  alloc_at t ~name ~base ~len ~perm

let regions t = List.rev t.regions

let region_by_name t name =
  List.find_opt (fun r -> r.name = name) t.regions

let in_range t addr = addr >= 0 && addr < Array.length t.cells

let load t addr =
  if addr = 0 then Fault.raise_fault Fault.Nil_dereference;
  if not (in_range t addr) then
    Fault.raise_fault (Fault.Out_of_bounds { access = Fault.Read; addr });
  if Char.code (Bytes.unsafe_get t.perms addr) land 1 = 0 then
    Fault.raise_fault (Fault.Protection { access = Fault.Read; addr });
  Array.unsafe_get t.cells addr

let store t addr v =
  if addr = 0 then Fault.raise_fault Fault.Nil_dereference;
  if not (in_range t addr) then
    Fault.raise_fault (Fault.Out_of_bounds { access = Fault.Write; addr });
  if Char.code (Bytes.unsafe_get t.perms addr) land 2 = 0 then
    Fault.raise_fault (Fault.Protection { access = Fault.Write; addr });
  Array.unsafe_set t.cells addr v

let clamp t addr =
  let n = Array.length t.cells in
  let m = addr mod n in
  if m < 0 then m + n else m

let unsafe_load t addr = Array.unsafe_get t.cells (clamp t addr)
let unsafe_store t addr v = Array.unsafe_set t.cells (clamp t addr) v
let cells t = t.cells

let blit_in t region src =
  if Array.length src > region.len then
    invalid_arg "Memory.blit_in: source longer than region";
  Array.blit src 0 t.cells region.base (Array.length src)

let read_out t region = Array.sub t.cells region.base region.len

let fill t region v = Array.fill t.cells region.base region.len v

let protect t region perm =
  let region' = { region with perm } in
  t.regions <-
    List.map (fun r -> if r.base = region.base then region' else r) t.regions;
  set_region_perms t region';
  region'

let readable t addr =
  in_range t addr && addr <> 0
  && Char.code (Bytes.unsafe_get t.perms addr) land 1 <> 0

let writable t addr =
  in_range t addr && addr <> 0
  && Char.code (Bytes.unsafe_get t.perms addr) land 2 <> 0
