(** The address space a graft executes against.

    A flat array of integer cells, partitioned into named regions with
    read/write permissions. The kernel maps shared windows (an LRU
    queue, a hot list, an I/O buffer) into a graft's space; the rest is
    private scratch. Cell 0 is never mapped so that address 0 behaves
    like NIL. *)

type perm = { read : bool; write : bool }

val perm_rw : perm
val perm_ro : perm
val perm_none : perm

type region = {
  name : string;
  base : int;  (** first cell of the region *)
  len : int;   (** number of cells *)
  perm : perm;
}

type t

(** [create size] makes a space of [size] cells, all unmapped.
    Cell 0 is permanently reserved (NIL). *)
val create : int -> t

val size : t -> int

(** [alloc t ~name ~len ~perm] maps the next [len] unmapped cells.
    Raises [Invalid_argument] when the space is exhausted. *)
val alloc : t -> name:string -> len:int -> perm:perm -> region

(** [alloc_pow2 t ~name ~len ~perm] like [alloc] but aligns the base and
    rounds the region length up to a power of two, as SFI sandboxes
    require (mask-based confinement needs a power-of-two segment). *)
val alloc_pow2 : t -> name:string -> len:int -> perm:perm -> region

val regions : t -> region list
val region_by_name : t -> string -> region option

(** Checked accesses: raise [Fault.Fault] on unmapped addresses,
    permission violations, and NIL (address 0). *)
val load : t -> int -> int
val store : t -> int -> int -> unit

(** Unchecked accesses (the "unsafe C" regime): no bounds or permission
    checks beyond the host language's physical array limit. Out-of-range
    addresses are clamped into the physical array modulo its size, which
    models a stray pointer landing "somewhere in kernel memory". *)
val unsafe_load : t -> int -> int
val unsafe_store : t -> int -> int -> unit

(** Direct access to the backing cells, for native grafts and for the
    kernel laying out shared structures. *)
val cells : t -> int array

(** [blit_in t region src] copies [src] into the region from its base.
    Raises [Invalid_argument] if [src] is longer than the region. *)
val blit_in : t -> region -> int array -> unit

(** [read_out t region] copies the region's cells out. *)
val read_out : t -> region -> int array

(** [fill t region v] sets every cell of the region to [v]. *)
val fill : t -> region -> int -> unit

(** [protect t region perm] changes a region's permissions in place
    (e.g. the kernel revoking write access to a shared window). *)
val protect : t -> region -> perm -> region

(** [readable t addr] / [writable t addr]: permission queries. *)
val readable : t -> int -> bool
val writable : t -> int -> bool
