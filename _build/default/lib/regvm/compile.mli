(** Compiler from GEL IR to register-VM code.

    Locals live in registers; expression temporaries are stack-
    allocated above them. Array bases are baked in as load/store
    immediates and no bounds checks are emitted: in the SFI model,
    memory safety comes from the {!Sfi} rewriting pass, not checks.

    The register allocator does not spill; an expression too deep for
    the 128-register file raises {!Compile_error} (surfaced as a load
    error by {!Regvm.load}). *)

exception Compile_error of string

val compile : Graft_gel.Link.image -> segment:Program.segment -> Program.t
