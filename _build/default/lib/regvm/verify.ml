(** Linear-time load-time verifier for sandboxed register code — the
    "linear-time algorithm [that] can be used to guarantee that all
    memory references in a piece of object code have been correctly
    sandboxed" from the paper's section 4.2.

    Invariants enforced for [Write_jump] protection (plus loads for
    [Full]):
    - every store addresses through the dedicated register r1 with
      offset 0;
    - r1 is written only by the canonical masking pair
      [andi r1, rX, size-1] / [ori r1, r1, base] with the segment's
      exact constants;
    - every store (and the [ori]) is immediately preceded by the rest
      of its masking sequence, and no branch lands between the [andi]
      and the memory access — so r1 always holds an in-segment address
      when dereferenced;
    - r0 (hard-wired zero) is never written;
    - all branch and call targets are in range.

    One pass over the code; all checks O(1) per instruction. *)

let verify (p : Program.t) : (unit, string) result =
  let exception Bad of string in
  let bad i fmt =
    Printf.ksprintf
      (fun msg -> raise (Bad (Printf.sprintf "at %d: %s" i msg)))
      fmt
  in
  let code = p.Program.code in
  let n = Array.length code in
  let seg = p.Program.segment in
  let mask = seg.Program.size - 1 in
  let base = seg.Program.base in
  let protected_st =
    p.Program.protection <> Program.Unprotected
  in
  let protected_ld = p.Program.protection = Program.Full in
  (* Instructions that must not be branch targets: the ori completing a
     masking pair and any memory access through r1. *)
  let no_entry = Array.make n false in
  let check_reg i r =
    if r < 0 || r >= Isa.nregs then bad i "register r%d out of range" r
  in
  let check_target i t =
    if t < 0 || t >= n then bad i "branch target %d out of range" t;
    if no_entry.(t) then bad i "branch into a masking sequence at %d" t
  in
  try
    (* Pass 1: structural checks, dedicated-register discipline, and
       no-entry marking. *)
    for i = 0 to n - 1 do
      let instr = code.(i) in
      List.iter
        (fun r ->
          check_reg i r;
          if r = Isa.reg_zero then bad i "write to hard-wired zero register";
          if r = Isa.reg_sandbox then
            match instr with
            | Isa.Andi (rd, _, m) when rd = Isa.reg_sandbox ->
                if not protected_st then
                  bad i "sandbox register used without protection"
                else if m <> mask then
                  bad i "andi with wrong mask 0x%x (segment mask 0x%x)" m mask
            | Isa.Ori (rd, rs, b) when rd = Isa.reg_sandbox ->
                if rs <> Isa.reg_sandbox then
                  bad i "ori source must be the sandbox register";
                if b <> base then
                  bad i "ori with wrong base 0x%x (segment base 0x%x)" b base;
                (* The ori must complete an andi pair. *)
                if i = 0
                   || (match code.(i - 1) with
                      | Isa.Andi (rd', _, m')
                        when rd' = Isa.reg_sandbox && m' = mask ->
                          false
                      | _ -> true)
                then bad i "ori not preceded by the masking andi";
                no_entry.(i) <- true
            | _ -> bad i "non-masking write to the sandbox register")
        (Isa.writes instr);
      (match instr with
      | Isa.St (rb, rs, off) ->
          check_reg i rb;
          check_reg i rs;
          if protected_st then begin
            if rb <> Isa.reg_sandbox then
              bad i "store does not address through the sandbox register";
            if off <> 0 then bad i "store through sandbox register has offset";
            if i = 0
               || (match code.(i - 1) with
                  | Isa.Ori (rd, _, b) when rd = Isa.reg_sandbox && b = base ->
                      false
                  | _ -> true)
            then bad i "store not preceded by a completed masking pair";
            no_entry.(i) <- true
          end
      | Isa.Ld (rd, rs, off) ->
          check_reg i rd;
          check_reg i rs;
          if protected_ld then begin
            if rs <> Isa.reg_sandbox then
              bad i "load does not address through the sandbox register";
            if off <> 0 then bad i "load through sandbox register has offset";
            if i = 0
               || (match code.(i - 1) with
                  | Isa.Ori (rd', _, b) when rd' = Isa.reg_sandbox && b = base
                    ->
                      false
                  | _ -> true)
            then bad i "load not preceded by a completed masking pair";
            no_entry.(i) <- true
          end
      | Isa.Call { f; argbase; nargs; _ } ->
          if f < 0 || f >= Array.length p.Program.funcs then
            bad i "call to invalid function %d" f;
          if nargs <> p.Program.funcs.(f).Program.nargs then
            bad i "call with %d args to function expecting %d" nargs
              p.Program.funcs.(f).Program.nargs;
          check_reg i argbase;
          if argbase + nargs > Isa.nregs then bad i "argument block overflows"
      | Isa.Callext { e; argbase; nargs; _ } ->
          if e < 0 || e >= Array.length p.Program.host then
            bad i "call to invalid extern %d" e;
          if nargs <> p.Program.ext_arity.(e) then
            bad i "extern call arity mismatch";
          check_reg i argbase;
          if argbase + nargs > Isa.nregs then bad i "argument block overflows"
      | _ -> ())
    done;
    (* Pass 2: branch targets (needs completed no_entry map). *)
    for i = 0 to n - 1 do
      match code.(i) with
      | Isa.Br t -> check_target i t
      | Isa.Brz (r, t) | Isa.Brnz (r, t) ->
          check_reg i r;
          check_target i t
      | _ -> ()
    done;
    (* Function extents. *)
    Array.iteri
      (fun fi (f : Program.funcdesc) ->
        if f.Program.entry < 0 || f.Program.entry > f.Program.code_end
           || f.Program.code_end > n then
          raise
            (Bad (Printf.sprintf "function %d (%s): bad code extent" fi
                    f.Program.name)))
      p.Program.funcs;
    Ok ()
  with Bad msg -> Error msg
