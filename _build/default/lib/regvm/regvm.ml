(** Front door for the register VM + SFI toolchain (the paper's
    "Omniware" technology).

    {[
      let p = Regvm.load_exn ~protection:Program.Write_jump image in
      Regvm.Machine.run p ~entry:"main" ~args:[||] ~fuel:1_000_000
    ]}

    [load] compiles the linked image, applies the SFI instrumentation
    pass for the requested protection level, and runs the load-time
    verifier, refusing code that is not correctly sandboxed. *)

module Isa = Isa
module Program = Program
module Compile = Compile
module Sfi = Sfi
module Verify = Verify
module Machine = Machine
module Disasm = Disasm

let load ?(protection = Program.Write_jump) (image : Graft_gel.Link.image) :
    (Program.t, string) result =
  match
    Compile.compile image ~segment:(Sfi.segment_of_memory image.Graft_gel.Link.mem)
  with
  | exception Compile.Compile_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | p -> (
      match Sfi.instrument p ~protection with
      | exception Invalid_argument msg -> Error msg
      | p -> (
          match Verify.verify p with Ok () -> Ok p | Error msg -> Error msg))

let load_exn ?protection image =
  match load ?protection image with Ok p -> p | Error msg -> failwith msg
