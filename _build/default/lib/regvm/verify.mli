(** Linear-time load-time verifier for sandboxed register code — the
    "linear-time algorithm [that] can be used to guarantee that all
    memory references in a piece of object code have been correctly
    sandboxed" from the paper's section 4.2.

    Enforced for [Write_jump] protection (plus loads for [Full]): every
    store addresses through the dedicated sandbox register r1 at offset
    0; r1 is written only by the canonical [andi]/[ori] masking pair
    with the segment's exact constants; no branch lands inside a
    masking sequence; r0 is never written; all branch and call targets
    are in range. One pass, O(1) work per instruction. *)

val verify : Program.t -> (unit, string) result
