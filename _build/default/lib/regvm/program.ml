(** Executable form of a register-VM graft. *)

type funcdesc = {
  name : string;
  nargs : int;
  entry : int;
  code_end : int;
}

(** The sandbox segment SFI confines writes (and optionally reads) to.
    [base] is aligned to [size]; [size] is a power of two. *)
type segment = { base : int; size : int }

type protection =
  | Unprotected  (** no SFI pass applied (baseline for ablation) *)
  | Write_jump  (** Omniware beta: stores masked, loads free *)
  | Full  (** stores and loads masked *)

type t = {
  code : Isa.instr array;
  funcs : funcdesc array;
  host : (int array -> int) array;
  ext_arity : int array;
  cells : int array;
  segment : segment;
  protection : protection;
}

let find_func p name =
  let rec go i =
    if i >= Array.length p.funcs then None
    else if p.funcs.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let protection_to_string = function
  | Unprotected -> "unprotected"
  | Write_jump -> "write+jump"
  | Full -> "full (read+write+jump)"
