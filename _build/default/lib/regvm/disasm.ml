(** Disassembler for register-VM programs. *)

let program (p : Program.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "; protection: %s, segment [%d, %d)\n"
       (Program.protection_to_string p.Program.protection)
       p.Program.segment.Program.base
       (p.Program.segment.Program.base + p.Program.segment.Program.size));
  Array.iter
    (fun (f : Program.funcdesc) ->
      Buffer.add_string buf
        (Printf.sprintf "fn %s (args=%d):\n" f.Program.name f.Program.nargs);
      for pc = f.Program.entry to f.Program.code_end - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  %4d: %s\n" pc (Isa.to_string p.Program.code.(pc)))
      done)
    p.Program.funcs;
  Buffer.contents buf
