lib/regvm/sfi.mli: Graft_mem Program
