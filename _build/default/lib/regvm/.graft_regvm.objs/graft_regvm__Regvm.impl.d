lib/regvm/regvm.ml: Compile Disasm Graft_gel Isa Machine Program Sfi Verify
