lib/regvm/sfi.ml: Array Graft_mem Isa Program
