lib/regvm/verify.ml: Array Isa List Printf Program
