lib/regvm/disasm.ml: Array Buffer Isa Printf Program
