lib/regvm/compile.mli: Graft_gel Program
