lib/regvm/verify.mli: Program
