lib/regvm/machine.mli: Graft_mem Program
