lib/regvm/program.ml: Array Isa
