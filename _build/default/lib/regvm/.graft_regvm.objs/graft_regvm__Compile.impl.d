lib/regvm/compile.ml: Array Graft_gel Graft_mem Ir Isa Link List Program
