lib/regvm/isa.ml: Graft_gel Printf
