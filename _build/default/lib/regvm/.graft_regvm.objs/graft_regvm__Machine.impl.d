lib/regvm/machine.ml: Array Fault Graft_gel Graft_mem Interp Ir Isa Printf Program Wordops
