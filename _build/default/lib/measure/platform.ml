(** Platform profiles: the paper's four 1995 machines (Tables 1, 3, 4
    as published) plus a profile measured on the current host.

    Break-even computations need three event costs — signal/upcall
    time, page-fault time, and disk bandwidth. For the paper platforms
    these are the published numbers; for the host they are measured by
    {!Signalbench}, {!Faultbench} and {!Diskbench}. *)

type profile = {
  pname : string;
  signal_s : float;  (** Table 1: per-signal handling time *)
  fault_s : float;  (** Table 3: page fault time *)
  pages_per_fault : int;  (** Table 3: read-ahead *)
  disk_bytes_per_s : float;  (** Table 4: write bandwidth *)
  measured : bool;
}

let kb = 1024.0

let paper_profiles =
  [
    {
      pname = "Alpha";
      signal_s = 19.5e-6;
      fault_s = 25.1e-3;
      pages_per_fault = 16;
      disk_bytes_per_s = 4364.0 *. kb;
      measured = false;
    };
    {
      pname = "HP-UX";
      signal_s = 25.8e-6;
      fault_s = 17.9e-3;
      pages_per_fault = 4;
      disk_bytes_per_s = 1855.0 *. kb;
      measured = false;
    };
    {
      pname = "Linux";
      signal_s = 55.9e-6;
      fault_s = 4.7e-3;
      pages_per_fault = 1;
      disk_bytes_per_s = 1694.0 *. kb;
      measured = false;
    };
    {
      pname = "Solaris";
      signal_s = 40.3e-6;
      fault_s = 6.9e-3;
      pages_per_fault = 1;
      disk_bytes_per_s = 3126.0 *. kb;
      measured = false;
    };
  ]

let find_paper name =
  List.find (fun p -> p.pname = name) paper_profiles

(** Measure the host. Each component can be skipped (e.g. in restricted
    environments) and falls back to a conservative constant. *)
let measure_host ?(signal_rounds = 100) ?(disk_runs = 3) ?(fault_pages = 1024)
    () =
  let signal_s =
    match Signalbench.measure ~rounds:signal_rounds () with
    | r -> r.Signalbench.per_signal_s.Graft_util.Stats.mean
    | exception _ -> 10e-6
  in
  let fault_s =
    match Faultbench.measure ~pages:fault_pages ~runs:5 () with
    | r -> r.Faultbench.per_fault_s.Graft_util.Stats.mean
    | exception _ -> 1e-6
  in
  let disk_bytes_per_s =
    match Diskbench.measure ~runs:disk_runs () with
    | r -> r.Diskbench.bandwidth_bytes_per_s.Graft_util.Stats.mean
    | exception _ -> 500e6
  in
  {
    pname = "host";
    signal_s;
    fault_s;
    pages_per_fault = 1;
    disk_bytes_per_s;
    measured = true;
  }

(** Upcall estimate (the paper's: ~40% quicker than a signal). *)
let upcall_s p = p.signal_s *. 0.6

(** 1MB access time at the profile's disk bandwidth (Table 4). *)
let mb_access_s p = (1024.0 *. kb) /. p.disk_bytes_per_s
