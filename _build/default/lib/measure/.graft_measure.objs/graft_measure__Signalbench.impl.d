lib/measure/signalbench.ml: Array Bytes Float Graft_util Int64 List Sys Unix
