lib/measure/upcallbench.ml: Array Bytes Char Graft_util Int64 Unix
