lib/measure/faultbench.ml: Array Bigarray Bytes Char Filename Fun Graft_util Int64 Printf Sys Unix
