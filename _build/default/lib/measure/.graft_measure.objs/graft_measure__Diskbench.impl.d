lib/measure/diskbench.ml: Array Bytes Filename Graft_util Int64 Printf Sys Unix
