lib/measure/platform.ml: Diskbench Faultbench Graft_util List Signalbench
