(** Load-time bytecode verifier, in the spirit of the Java verifier the
    paper's interpreted technology relies on.

    For each function it runs an abstract interpretation over operand-
    stack heights: every reachable instruction must have a single
    consistent height, never underflow, never exceed [max_stack], never
    jump outside its own function, and only reference valid locals,
    arrays, functions and externs. Code that fails is rejected before
    it ever executes. *)

val max_stack : int
val max_locals : int

val verify : Program.t -> (unit, string) result
