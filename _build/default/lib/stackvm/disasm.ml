(** Disassembler for stack-VM programs. *)

let program (p : Program.t) =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun (f : Program.funcdesc) ->
      Buffer.add_string buf
        (Printf.sprintf "fn %s (args=%d locals=%d):\n" f.Program.name
           f.Program.nargs f.Program.nlocals);
      for pc = f.Program.entry to f.Program.code_end - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  %4d: %s\n" pc (Opcode.to_string p.Program.code.(pc)))
      done)
    p.Program.funcs;
  Buffer.contents buf
