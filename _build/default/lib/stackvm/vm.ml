(** The stack bytecode interpreter: a software virtual machine in the
    style of the 1995 Java VM the paper measured — switch dispatch over
    a bytecode array, an operand stack, per-call local frames, and a
    fuel counter decremented on every instruction so the kernel can
    preempt runaway grafts.

    A {!session} holds the operand stack and frame table so a resident
    graft pays no allocation on each kernel-to-graft entry, as a real
    in-kernel VM would not. *)

open Graft_mem
open Graft_gel

let max_frames = 256
let stack_size = 4096

type frame = { mutable ret_pc : int; mutable locals : int array }

type session = {
  p : Program.t;
  stack : int array;
  frames : frame array;
}

let create_session p =
  {
    p;
    stack = Array.make stack_size 0;
    frames = Array.init max_frames (fun _ -> { ret_pc = -1; locals = [||] });
  }

let run_session (s : session) ~entry ~(args : int array) ~fuel :
    (int, [ `Fault of Fault.t | `Bad_entry of string ]) result =
  let p = s.p in
  match Program.find_func p entry with
  | None -> Error (`Bad_entry (Printf.sprintf "no function named %s" entry))
  | Some fidx when p.Program.funcs.(fidx).Program.nargs <> Array.length args
    ->
      Error
        (`Bad_entry
          (Printf.sprintf "%s expects %d arguments, given %d" entry
             p.Program.funcs.(fidx).Program.nargs (Array.length args)))
  | Some fidx -> (
      let code = p.Program.code in
      let cells = p.Program.cells in
      let stack = s.stack in
      let frames = s.frames in
      let sp = ref 0 in
      let depth = ref 0 in
      let fuel = ref fuel in
      let push v =
        if !sp >= stack_size then Fault.raise_fault Fault.Stack_overflow;
        Array.unsafe_set stack !sp v;
        incr sp
      in
      let pop () =
        (* The verifier proves no underflow for verified code; the check
           stays as defence in depth and costs one compare. *)
        if !sp <= 0 then
          Fault.raise_fault (Fault.Illegal_instruction "stack underflow");
        decr sp;
        Array.unsafe_get stack !sp
      in
      let enter_func target ret_pc =
        if !depth >= max_frames then Fault.raise_fault Fault.Stack_overflow;
        let f = p.Program.funcs.(target) in
        let frame = frames.(!depth) in
        frame.ret_pc <- ret_pc;
        (* Reuse the local slab when it is big enough: GEL locals are
           always written before read, so stale values are invisible. *)
        if Array.length frame.locals < f.Program.nlocals then
          frame.locals <- Array.make (max 8 f.Program.nlocals) 0;
        for i = f.Program.nargs - 1 downto 0 do
          frame.locals.(i) <- pop ()
        done;
        incr depth;
        f.Program.entry
      in
      let binop f =
        let b = pop () in
        let a = pop () in
        push (f a b)
      in
      let divlike f =
        let b = pop () in
        let a = pop () in
        if b = 0 then Fault.raise_fault Fault.Division_by_zero;
        push (f a b)
      in
      let cmp f =
        let b = pop () in
        let a = pop () in
        push (if f a b then 1 else 0)
      in
      let aload arr =
        let d = p.Program.arrays.(arr) in
        let i = pop () in
        if i < 0 || i >= d.Program.len then
          Fault.raise_fault
            (Fault.Out_of_bounds { access = Fault.Read; addr = i });
        push (Array.unsafe_get cells (d.Program.base + i))
      in
      let astore arr =
        let d = p.Program.arrays.(arr) in
        let v = pop () in
        let i = pop () in
        if i < 0 || i >= d.Program.len then
          Fault.raise_fault
            (Fault.Out_of_bounds { access = Fault.Write; addr = i });
        if not d.Program.writable then
          Fault.raise_fault
            (Fault.Protection
               { access = Fault.Write; addr = d.Program.base + i });
        Array.unsafe_set cells (d.Program.base + i) v
      in
      let result = ref 0 in
      let running = ref true in
      let pc = ref 0 in
      try
        Array.iter push args;
        pc := enter_func fidx (-1);
        while !running do
          decr fuel;
          if !fuel < 0 then Fault.raise_fault Fault.Fuel_exhausted;
          let instr = Array.unsafe_get code !pc in
          incr pc;
          match instr with
          | Opcode.Const n -> push n
          | Opcode.Load_local n -> push frames.(!depth - 1).locals.(n)
          | Opcode.Store_local n -> frames.(!depth - 1).locals.(n) <- pop ()
          | Opcode.Load_global a -> push (Array.unsafe_get cells a)
          | Opcode.Store_global a -> Array.unsafe_set cells a (pop ())
          | Opcode.Aload arr -> aload arr
          | Opcode.Astore arr -> astore arr
          | Opcode.Add -> binop ( + )
          | Opcode.Sub -> binop ( - )
          | Opcode.Mul -> binop ( * )
          | Opcode.Div -> divlike ( / )
          | Opcode.Mod -> divlike (fun a b -> a mod b)
          | Opcode.Shl -> binop Wordops.int_shl
          | Opcode.Shr -> binop Wordops.int_shr
          | Opcode.Lshr -> binop Wordops.int_lshr
          | Opcode.Band -> binop ( land )
          | Opcode.Bor -> binop ( lor )
          | Opcode.Bxor -> binop ( lxor )
          | Opcode.Bnot -> push (lnot (pop ()))
          | Opcode.Neg -> push (-pop ())
          | Opcode.Wadd -> binop Wordops.add
          | Opcode.Wsub -> binop Wordops.sub
          | Opcode.Wmul -> binop Wordops.mul
          | Opcode.Wshl -> binop Wordops.shl
          | Opcode.Wshr -> binop Wordops.shr
          | Opcode.Wbnot -> push (Wordops.bnot (pop ()))
          | Opcode.Wneg -> push (Wordops.neg (pop ()))
          | Opcode.Wmask -> push (Wordops.of_int (pop ()))
          | Opcode.Lt -> cmp ( < )
          | Opcode.Le -> cmp ( <= )
          | Opcode.Gt -> cmp ( > )
          | Opcode.Ge -> cmp ( >= )
          | Opcode.Eq -> cmp ( = )
          | Opcode.Ne -> cmp ( <> )
          | Opcode.Tobool -> push (if pop () = 0 then 0 else 1)
          | Opcode.Not -> push (if pop () = 0 then 1 else 0)
          | Opcode.Jmp t -> pc := t
          | Opcode.Jz t -> if pop () = 0 then pc := t
          | Opcode.Jnz t -> if pop () <> 0 then pc := t
          | Opcode.Call target -> pc := enter_func target !pc
          | Opcode.Callext target ->
              let arity = p.Program.ext_arity.(target) in
              let argv = Array.make arity 0 in
              for i = arity - 1 downto 0 do
                argv.(i) <- pop ()
              done;
              push (p.Program.host.(target) argv)
          | Opcode.Ret ->
              let v = pop () in
              decr depth;
              let ret_pc = frames.(!depth).ret_pc in
              if ret_pc = -1 then begin
                result := v;
                running := false
              end
              else begin
                push v;
                pc := ret_pc
              end
          | Opcode.Pop -> ignore (pop ())
          | Opcode.Dup ->
              let v = pop () in
              push v;
              push v
          | Opcode.Halt -> Fault.raise_fault (Fault.Illegal_instruction "halt")
        done;
        Ok !result
      with Fault.Fault f -> Error (`Fault f))

(** One-shot convenience; resident grafts should keep a session. *)
let run p ~entry ~args ~fuel = run_session (create_session p) ~entry ~args ~fuel
