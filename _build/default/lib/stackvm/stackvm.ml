(** Front door for the stack bytecode VM (the paper's "Java"
    technology): compile a linked GEL image to bytecode, verify it, and
    execute it.

    {[
      let prog = Stackvm.load_exn image in
      Stackvm.Vm.run prog ~entry:"main" ~args:[||] ~fuel:1_000_000
    ]} *)

module Opcode = Opcode
module Program = Program
module Compile = Compile
module Verify = Verify
module Vm = Vm
module Disasm = Disasm

(** Compile and verify a linked image; refuses unverifiable code as the
    kernel's loader would. *)
let load (image : Graft_gel.Link.image) : (Program.t, string) result =
  let p = Compile.compile image in
  match Verify.verify p with Ok () -> Ok p | Error msg -> Error msg

let load_exn image =
  match load image with Ok p -> p | Error msg -> failwith msg
