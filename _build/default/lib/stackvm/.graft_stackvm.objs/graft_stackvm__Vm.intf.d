lib/stackvm/vm.mli: Graft_mem Program
