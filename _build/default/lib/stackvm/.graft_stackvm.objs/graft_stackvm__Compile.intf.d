lib/stackvm/compile.mli: Graft_gel Program
