lib/stackvm/program.ml: Array Opcode
