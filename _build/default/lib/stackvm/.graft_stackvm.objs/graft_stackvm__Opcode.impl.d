lib/stackvm/opcode.ml: Printf
