lib/stackvm/compile.ml: Array Graft_gel Graft_mem Ir Link List Opcode Program
