lib/stackvm/verify.ml: Array Opcode Printf Program Queue
