lib/stackvm/stackvm.ml: Compile Disasm Graft_gel Opcode Program Verify Vm
