lib/stackvm/disasm.ml: Array Buffer Opcode Printf Program
