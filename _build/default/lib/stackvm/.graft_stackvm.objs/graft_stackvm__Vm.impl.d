lib/stackvm/vm.ml: Array Fault Graft_gel Graft_mem Opcode Printf Program Wordops
