lib/stackvm/verify.mli: Program
