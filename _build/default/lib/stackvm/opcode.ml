(** Instruction set of the stack bytecode VM, the paper's "Java"
    technology: a compact stack machine executed by a software
    interpreter, with a load-time verifier.

    All values are integers; word (unsigned 32-bit) operations have
    dedicated opcodes that re-mask their result, preserving the
    invariant that word values stay in [0, 2^32). Array opcodes carry
    the array id; bases, lengths and writability live in the program's
    array table so the verifier can reason about them. *)

type t =
  | Const of int
  | Load_local of int
  | Store_local of int
  | Load_global of int  (** absolute cell address *)
  | Store_global of int
  | Aload of int  (** array id; pops index, pushes value *)
  | Astore of int  (** array id; pops value then index *)
  (* int arithmetic *)
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Lshr
  | Band | Bor | Bxor | Bnot | Neg
  (* word (32-bit wrapping) variants *)
  | Wadd | Wsub | Wmul
  | Wshl | Wshr
  | Wbnot | Wneg
  | Wmask  (** int -> word cast *)
  (* comparisons: push 0/1 *)
  | Lt | Le | Gt | Ge | Eq | Ne
  | Tobool  (** v <> 0 -> 1 | 0 *)
  | Not  (** boolean negation *)
  (* control *)
  | Jmp of int
  | Jz of int  (** jump when popped value = 0 *)
  | Jnz of int
  | Call of int  (** function index; pops the callee's args *)
  | Callext of int  (** extern index *)
  | Ret  (** pops return value, pops frame *)
  | Pop
  | Dup
  | Halt  (** only reachable on compiler bugs; faults *)

(** Stack effect (pops, pushes), with call effects resolved by the
    caller since they depend on the function table. *)
let effect = function
  | Const _ | Load_local _ | Load_global _ -> (0, 1)
  | Store_local _ | Store_global _ -> (1, 0)
  | Aload _ -> (1, 1)
  | Astore _ -> (2, 0)
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Lshr | Band | Bor | Bxor
  | Wadd | Wsub | Wmul | Wshl | Wshr
  | Lt | Le | Gt | Ge | Eq | Ne ->
      (2, 1)
  | Bnot | Neg | Wbnot | Wneg | Wmask | Tobool | Not -> (1, 1)
  | Jmp _ -> (0, 0)
  | Jz _ | Jnz _ -> (1, 0)
  | Call _ | Callext _ -> (0, 0) (* resolved by caller *)
  | Ret -> (1, 0)
  | Pop -> (1, 0)
  | Dup -> (1, 2)
  | Halt -> (0, 0)

let to_string = function
  | Const n -> Printf.sprintf "const %d" n
  | Load_local n -> Printf.sprintf "lload %d" n
  | Store_local n -> Printf.sprintf "lstore %d" n
  | Load_global a -> Printf.sprintf "gload @%d" a
  | Store_global a -> Printf.sprintf "gstore @%d" a
  | Aload a -> Printf.sprintf "aload #%d" a
  | Astore a -> Printf.sprintf "astore #%d" a
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Shl -> "shl" | Shr -> "shr" | Lshr -> "lshr"
  | Band -> "band" | Bor -> "bor" | Bxor -> "bxor" | Bnot -> "bnot"
  | Neg -> "neg"
  | Wadd -> "wadd" | Wsub -> "wsub" | Wmul -> "wmul"
  | Wshl -> "wshl" | Wshr -> "wshr"
  | Wbnot -> "wbnot" | Wneg -> "wneg" | Wmask -> "wmask"
  | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"
  | Tobool -> "tobool" | Not -> "not"
  | Jmp t -> Printf.sprintf "jmp %d" t
  | Jz t -> Printf.sprintf "jz %d" t
  | Jnz t -> Printf.sprintf "jnz %d" t
  | Call f -> Printf.sprintf "call fn%d" f
  | Callext e -> Printf.sprintf "callext ext%d" e
  | Ret -> "ret"
  | Pop -> "pop"
  | Dup -> "dup"
  | Halt -> "halt"
