(** Executable form of a stack-VM graft: one flat code array plus
    function, array, and host tables. Produced by [Compile], checked by
    [Verify], executed by [Vm]. *)

type funcdesc = {
  name : string;
  nargs : int;
  nlocals : int;  (** including parameters *)
  entry : int;  (** code index of the first instruction *)
  code_end : int;  (** one past the last instruction of this function *)
}

type arrdesc = { base : int; len : int; writable : bool }

type t = {
  code : Opcode.t array;
  funcs : funcdesc array;
  arrays : arrdesc array;
  host : (int array -> int) array;
  ext_arity : int array;  (** argument count per extern, for the verifier *)
  cells : int array;  (** the graft address space backing store *)
}

let find_func p name =
  let rec go i =
    if i >= Array.length p.funcs then None
    else if p.funcs.(i).name = name then Some i
    else go (i + 1)
  in
  go 0
