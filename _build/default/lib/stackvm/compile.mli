(** Compiler from GEL IR to stack bytecode.

    Compilation happens against a linked image so global and array
    addresses are absolute. Short-circuit operators and loops lower to
    conditional jumps; [continue] jumps to the loop's step block and
    [break] past the loop. Every function ends with a [Const 0; Ret]
    safety net (unreachable in value functions — the typechecker
    guarantees a return on every path). *)

val compile : Graft_gel.Link.image -> Program.t
