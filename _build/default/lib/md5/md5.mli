(** MD5 message digest (RFC 1321), pure OCaml.

    This is the paper's representative Stream graft: expensive to
    compute, stream-structured (small running state, data passes through
    unchanged), queried for the 128-bit fingerprint at the end.

    The implementation is incremental so it can sit in a kernel stream
    filter chain and digest a file as it flows past. *)

type ctx

(** Fresh context (RFC 1321 initial chaining values). *)
val init : unit -> ctx

(** [update ctx buf off len] absorbs [len] bytes of [buf] starting at
    [off]. Raises [Invalid_argument] on a bad range. *)
val update : ctx -> bytes -> int -> int -> unit

(** [final ctx] pads, absorbs the length, and returns the 16-byte
    digest. The context must not be used afterwards. *)
val final : ctx -> string

(** One-shot digest of a full buffer. *)
val digest_bytes : bytes -> string

val digest_string : string -> string

(** Lowercase hex rendering of a 16-byte digest. *)
val to_hex : string -> string

(** [digest_hex s] = [to_hex (digest_string s)]. *)
val digest_hex : string -> string
