(* RFC 1321, computed in OCaml ints masked to 32 bits. The paper's MD5
   graft relies on arithmetic modulo 2^32; here that is explicit
   masking, mirroring what the Modula-3 Word package provided. *)

let mask = 0xFFFFFFFF

type ctx = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable len : int;          (* total bytes absorbed *)
  block : bytes;              (* 64-byte staging buffer *)
  mutable fill : int;         (* bytes currently staged *)
  x : int array;              (* decoded 16-word block *)
}

(* T[i] = floor(2^32 * abs(sin(i + 1))), per RFC 1321. *)
let t_table =
  Array.init 64 (fun i ->
      int_of_float (Float.abs (sin (float_of_int (i + 1))) *. 4294967296.0)
      land mask)

let s_table =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    len = 0;
    block = Bytes.create 64;
    fill = 0;
    x = Array.make 16 0;
  }

let rotl32 v s = ((v lsl s) lor (v lsr (32 - s))) land mask

let transform ctx =
  let x = ctx.x in
  let block = ctx.block in
  for i = 0 to 15 do
    let o = i * 4 in
    x.(i) <-
      Char.code (Bytes.unsafe_get block o)
      lor (Char.code (Bytes.unsafe_get block (o + 1)) lsl 8)
      lor (Char.code (Bytes.unsafe_get block (o + 2)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (o + 3)) lsl 24)
  done;
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, k =
      if i < 16 then (!b land !c) lor (lnot !b land !d), i
      else if i < 32 then (!d land !b) lor (lnot !d land !c), (5 * i + 1) mod 16
      else if i < 48 then !b lxor !c lxor !d, (3 * i + 5) mod 16
      else !c lxor (!b lor (lnot !d land mask)), (7 * i) mod 16
    in
    let f = f land mask in
    let sum = (!a + f + x.(k) + t_table.(i)) land mask in
    let a' = (!b + rotl32 sum s_table.(i)) land mask in
    a := !d;
    d := !c;
    c := !b;
    b := a'
  done;
  ctx.a <- (ctx.a + !a) land mask;
  ctx.b <- (ctx.b + !b) land mask;
  ctx.c <- (ctx.c + !c) land mask;
  ctx.d <- (ctx.d + !d) land mask

let update ctx buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Md5.update: bad range";
  ctx.len <- ctx.len + len;
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled staging block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit buf !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      transform ctx;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    Bytes.blit buf !pos ctx.block 0 64;
    transform ctx;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit buf !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let final ctx =
  let bit_len = ctx.len * 8 in
  let pad_len =
    let rem = ctx.len mod 64 in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let padding = Bytes.make pad_len '\000' in
  Bytes.set padding 0 '\x80';
  update ctx padding 0 pad_len;
  ctx.len <- ctx.len - pad_len (* padding is not message data *);
  let tail = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set tail i (Char.chr ((bit_len lsr (8 * i)) land 0xFF))
  done;
  update ctx tail 0 8;
  let out = Bytes.create 16 in
  let put off v =
    for i = 0 to 3 do
      Bytes.set out (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
    done
  in
  put 0 ctx.a;
  put 4 ctx.b;
  put 8 ctx.c;
  put 12 ctx.d;
  Bytes.to_string out

let digest_bytes buf =
  let ctx = init () in
  update ctx buf 0 (Bytes.length buf);
  final ctx

let digest_string s = digest_bytes (Bytes.of_string s)

let to_hex digest =
  let buf = Buffer.create 32 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) digest;
  Buffer.contents buf

let digest_hex s = to_hex (digest_string s)
