lib/md5/md5.mli:
