lib/md5/md5.ml: Array Buffer Bytes Char Float Printf String
