(** The paper's published numbers (Tables 1–6), kept verbatim so every
    regenerated table can print the 1996 figures beside ours and
    EXPERIMENTS.md can record shape agreement. Times in seconds. *)

type tech_row = {
  platform : string;
  c_s : float option;
  java_s : float option;
  m3_s : float option;
  omniware_s : float option;
}

(* Table 1: per-signal handling time. *)
let table1_signal_s =
  [ ("Alpha", 19.5e-6); ("HP-UX", 25.8e-6); ("Linux", 55.9e-6); ("Solaris", 40.3e-6) ]

(* Table 2: 64-entry hot-list search (raw). *)
let table2_search =
  [
    { platform = "Alpha"; c_s = Some 2.9e-6; java_s = None; m3_s = Some 3.2e-6; omniware_s = None };
    { platform = "HP-UX"; c_s = Some 6.0e-6; java_s = Some 159e-6; m3_s = Some 6.8e-6; omniware_s = None };
    { platform = "Linux"; c_s = Some 3.7e-6; java_s = Some 237e-6; m3_s = Some 9.1e-6; omniware_s = None };
    { platform = "Solaris"; c_s = Some 4.5e-6; java_s = Some 141e-6; m3_s = Some 6.3e-6; omniware_s = Some 6.3e-6 };
  ]

(* The paper's Tcl measurement for the same search (Solaris). *)
let table2_tcl_solaris_s = 40e-3

(* Table 3: page fault time and pages per fault. *)
let table3_fault =
  [ ("Alpha", 25.1e-3, 16); ("HP-UX", 17.9e-3, 4); ("Linux", 4.7e-3, 1); ("Solaris", 6.9e-3, 1) ]

(* Table 4: write bandwidth (bytes/s) and 1MB access time. *)
let table4_disk =
  [
    ("Alpha", 4364.0 *. 1024.0, 0.235); ("HP-UX", 1855.0 *. 1024.0, 0.552);
    ("Linux", 1694.0 *. 1024.0, 0.604); ("Solaris", 3126.0 *. 1024.0, 0.320);
  ]

(* Table 5: MD5 of 1MB (raw). *)
let table5_md5 =
  [
    { platform = "Alpha"; c_s = Some 0.159; java_s = None; m3_s = Some 0.207; omniware_s = None };
    { platform = "HP-UX"; c_s = Some 0.239; java_s = Some 23.987; m3_s = Some 0.352; omniware_s = None };
    { platform = "Linux"; c_s = Some 0.202; java_s = Some 22.887; m3_s = Some 0.387; omniware_s = None };
    { platform = "Solaris"; c_s = Some 0.146; java_s = Some 10.368; m3_s = Some 0.294; omniware_s = Some 0.219 };
  ]

(* The paper's Tcl MD5 on Solaris: ~50 minutes for 1MB. *)
let table5_tcl_solaris_s = 3000.0

(* Table 6: Logical Disk, 262,144 writes (raw). *)
let table6_logdisk =
  [
    { platform = "Alpha"; c_s = Some 0.74; java_s = None; m3_s = Some 1.3; omniware_s = None };
    { platform = "HP-UX"; c_s = Some 1.3; java_s = Some 32.2; m3_s = Some 2.1; omniware_s = None };
    { platform = "Linux"; c_s = Some 1.3; java_s = Some 46.5; m3_s = Some 1.7; omniware_s = None };
    { platform = "Solaris"; c_s = Some 1.9; java_s = Some 24.6; m3_s = Some 2.9; omniware_s = Some 2.2 };
  ]

let logdisk_writes = 262144

(** Normalized factor (vs C) from a paper row, when both present. *)
let normalized c t =
  match (c, t) with Some c, Some t -> Some (t /. c) | _ -> None
