lib/report/paperdata.ml:
