(** A Tcl-3.7-like source-level scripting interpreter, the paper's
    "simple flexible scripting language" technology [CAMP95].

    Faithful to the era's Tcl in the properties that matter for the
    measurements: every value is a string, nothing is compiled (scripts
    are re-split and re-substituted on every execution, including every
    loop iteration), and the substitution forms are Tcl's ([$var],
    [\[cmd\]], braces, double quotes).

    Grafts reach kernel memory through [kload]/[kstore] on windows
    bound with {!bind_array}; every access is bounds- and
    permission-checked. A fuel budget preempts runaway scripts. *)

type t

(** Create an interpreter over the given kernel memory. [fuel] is the
    CPU quantum in abstract units (roughly commands plus expression
    operators); it is consumed across all evaluations until reset with
    {!set_fuel}. *)
val create : ?fuel:int -> Graft_mem.Memory.t -> t

val set_fuel : t -> int -> unit

(** Expose a kernel window to scripts as array [name] for
    [kload]/[kstore]. [writable] additionally gates [kstore]. *)
val bind_array :
  t -> name:string -> Graft_mem.Memory.region -> writable:bool -> unit

(** Register a host command callable from scripts. *)
val bind_command : t -> name:string -> (t -> string list -> string) -> unit

(** Set / read a global variable from the kernel side. *)
val define_variable : t -> string -> string -> unit

val read_variable : t -> string -> string option

(** Evaluate a script at top level; the result is the last command's
    result. Faults (including fuel exhaustion) are contained. *)
val eval : t -> string -> (string, Graft_mem.Fault.t) result

(** Invoke a proc previously defined by {!eval} — how the kernel calls
    into a script graft. *)
val call : t -> string -> string list -> (string, Graft_mem.Fault.t) result
