(** A Tcl-3.7-like source-level scripting interpreter, the paper's
    "simple flexible scripting language" technology [CAMP95].

    Faithful to the era's Tcl in the properties that matter for the
    measurements:
    - every value is a string; arithmetic round-trips through
      [int_of_string]/[string_of_int] on each operation;
    - nothing is compiled: scripts are re-scanned, re-split into words
      and re-substituted on every execution, including every iteration
      of a [while] body;
    - substitution forms are Tcl's: [$var], [\[cmd\]] command
      substitution, braces for literal text, double quotes with
      substitution.

    Grafts written in this language access kernel-shared windows with
    [kload]/[kstore], which bounds-check every access (the interpreter
    is a safe technology — just a slow one). A fuel budget preempts
    runaway scripts. *)

open Graft_mem

type arr = { base : int; len : int; writable : bool }

type frame = {
  vars : (string, string) Hashtbl.t;
  glinks : (string, unit) Hashtbl.t;  (** names linked to globals *)
}

type t = {
  mem : Memory.t;
  arrays : (string, arr) Hashtbl.t;
  procs : (string, string list * string) Hashtbl.t;
  commands : (string, t -> string list -> string) Hashtbl.t;
  globals : frame;
  mutable frames : frame list;  (** call stack, innermost first *)
  mutable fuel : int;
  mutable depth : int;
}

exception Return_exc of string
exception Break_exc
exception Continue_exc

let max_depth = 128

let fail fmt =
  Printf.ksprintf (fun msg -> Fault.raise_fault (Fault.Type_error msg)) fmt

let tick ?(cost = 1) t =
  t.fuel <- t.fuel - cost;
  if t.fuel < 0 then Fault.raise_fault Fault.Fuel_exhausted

let new_frame () = { vars = Hashtbl.create 16; glinks = Hashtbl.create 4 }

let current_frame t =
  match t.frames with frame :: _ -> frame | [] -> t.globals

let resolve_frame t name =
  let frame = current_frame t in
  if frame == t.globals then frame
  else if Hashtbl.mem frame.glinks name then t.globals
  else frame

let get_var t name =
  let frame = resolve_frame t name in
  match Hashtbl.find_opt frame.vars name with
  | Some v -> v
  | None -> fail "can't read %S: no such variable" name

let set_var t name value =
  let frame = resolve_frame t name in
  Hashtbl.replace frame.vars name value

let int_of t s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None ->
      ignore t;
      fail "expected integer but got %S" s

(* ------------------------------------------------------------------ *)
(* Scanning helpers.                                                   *)
(* ------------------------------------------------------------------ *)

let is_word_char c =
  not (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ';')

let is_var_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

(* Find the closing delimiter for a brace/bracket opened at [start]
   (index of the opening char). Returns index of the matching closer. *)
let find_matching src start open_c close_c =
  let n = String.length src in
  let rec go i depth =
    if i >= n then fail "missing %C" close_c
    else
      let c = src.[i] in
      if c = '\\' && i + 1 < n then go (i + 2) depth
      else if c = open_c then go (i + 1) (depth + 1)
      else if c = close_c then
        if depth = 1 then i else go (i + 1) (depth - 1)
      else go (i + 1) depth
  in
  go start 0

(* ------------------------------------------------------------------ *)
(* Substitution and word splitting.                                    *)
(* ------------------------------------------------------------------ *)

(* Substitute $var, [cmd] and backslash escapes in [src]; used for bare
   words, quoted words, and expr arguments. *)
let rec substitute t (src : string) : string =
  let n = String.length src in
  let buf = Buffer.create (n + 8) in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | '$' ->
        let start = !i + 1 in
        let stop = ref start in
        while !stop < n && is_var_char src.[!stop] do
          incr stop
        done;
        if !stop = start then Buffer.add_char buf '$'
        else begin
          Buffer.add_string buf (get_var t (String.sub src start (!stop - start)));
          i := !stop - 1
        end
    | '[' ->
        let close = find_matching src !i '[' ']' in
        let inner = String.sub src (!i + 1) (close - !i - 1) in
        Buffer.add_string buf (eval_script t inner);
        i := close
    | '\\' when !i + 1 < n ->
        incr i;
        Buffer.add_char buf
          (match src.[!i] with
          | 'n' -> '\n'
          | 't' -> '\t'
          | c -> c)
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* Split one command line into words, substituting as Tcl does. *)
and split_words t (src : string) : string list =
  let n = String.length src in
  let words = ref [] in
  let i = ref 0 in
  let skip_space () =
    while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do
      incr i
    done
  in
  skip_space ();
  while !i < n do
    (match src.[!i] with
    | '{' ->
        let close = find_matching src !i '{' '}' in
        words := String.sub src (!i + 1) (close - !i - 1) :: !words;
        i := close + 1
    | '"' ->
        let close =
          let rec go j =
            if j >= n then fail "missing closing quote"
            else if src.[j] = '\\' && j + 1 < n then go (j + 2)
            else if src.[j] = '"' then j
            else go (j + 1)
          in
          go (!i + 1)
        in
        words := substitute t (String.sub src (!i + 1) (close - !i - 1)) :: !words;
        i := close + 1
    | _ ->
        let start = !i in
        let brackets = ref 0 in
        while
          !i < n
          && (!brackets > 0 || is_word_char src.[!i])
        do
          (match src.[!i] with
          | '[' -> incr brackets
          | ']' -> decr brackets
          | '\\' when !i + 1 < n -> incr i
          | _ -> ());
          incr i
        done;
        words := substitute t (String.sub src start (!i - start)) :: !words);
    skip_space ()
  done;
  List.rev !words

(* Split a script into commands at top-level newlines and semicolons. *)
and split_commands (src : string) : string list =
  let n = String.length src in
  let cmds = ref [] in
  let start = ref 0 in
  let brace = ref 0 and bracket = ref 0 in
  let flush stop =
    let raw = String.sub src !start (stop - !start) in
    let trimmed = String.trim raw in
    if trimmed <> "" && trimmed.[0] <> '#' then cmds := trimmed :: !cmds;
    start := stop + 1
  in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | '\\' when !i + 1 < n -> incr i
    | '{' -> incr brace
    | '}' -> decr brace
    | '[' -> incr bracket
    | ']' -> decr bracket
    | ('\n' | ';') when !brace = 0 && !bracket = 0 -> flush !i
    | _ -> ());
    incr i
  done;
  flush n;
  List.rev !cmds

(* ------------------------------------------------------------------ *)
(* Evaluation.                                                         *)
(* ------------------------------------------------------------------ *)

and eval_script t (src : string) : string =
  let result = ref "" in
  List.iter (fun cmd -> result := eval_command t cmd) (split_commands src);
  !result

and eval_command t (line : string) : string =
  tick t;
  match split_words t line with
  | [] -> ""
  | name :: args -> dispatch t name args

and dispatch t name args =
  match Hashtbl.find_opt t.commands name with
  | Some f -> f t args
  | None -> (
      match Hashtbl.find_opt t.procs name with
      | Some (params, body) -> call_proc_internal t name params body args
      | None -> fail "invalid command name %S" name)

and call_proc_internal t name params body args =
  if List.length params <> List.length args then
    fail "wrong # args for %S: expected %d, got %d" name (List.length params)
      (List.length args);
  t.depth <- t.depth + 1;
  if t.depth > max_depth then Fault.raise_fault Fault.Stack_overflow;
  let frame = new_frame () in
  List.iter2 (fun p a -> Hashtbl.replace frame.vars p a) params args;
  t.frames <- frame :: t.frames;
  let finish result =
    t.frames <- List.tl t.frames;
    t.depth <- t.depth - 1;
    result
  in
  match eval_script t body with
  | result -> finish result
  | exception Return_exc v -> finish v
  | exception e ->
      ignore (finish "");
      raise e

and eval_expr t (raw : string) : int =
  let substituted = substitute t raw in
  let v, ops = Expr.eval substituted in
  tick ~cost:ops t;
  v

(* ------------------------------------------------------------------ *)
(* Built-in commands.                                                  *)
(* ------------------------------------------------------------------ *)

let cmd_set t = function
  | [ name ] -> get_var t name
  | [ name; value ] ->
      set_var t name value;
      value
  | args -> fail "wrong # args to set: %d" (List.length args)

let cmd_expr t args =
  match args with
  | [] -> fail "expr needs an argument"
  | _ -> string_of_int (eval_expr t (String.concat " " args))

let cmd_incr t = function
  | [ name ] ->
      let v = int_of t (get_var t name) + 1 in
      let s = string_of_int v in
      set_var t name s;
      s
  | [ name; amount ] ->
      let v = int_of t (get_var t name) + int_of t amount in
      let s = string_of_int v in
      set_var t name s;
      s
  | args -> fail "wrong # args to incr: %d" (List.length args)

let cmd_if t args =
  (* if cond body ?elseif cond body ...? ?else body? *)
  let rec go = function
    | cond :: body :: rest ->
        if eval_expr t cond <> 0 then eval_script t body
        else begin
          match rest with
          | [] -> ""
          | "elseif" :: rest -> go rest
          | [ "else"; body ] -> eval_script t body
          | [ body ] -> eval_script t body (* bare else body *)
          | _ -> fail "malformed if"
        end
    | _ -> fail "malformed if"
  in
  go args

let cmd_while t = function
  | [ cond; body ] ->
      (* Re-substitute and re-parse both the condition and the body on
         every iteration — the defining cost of a source interpreter. *)
      let rec loop () =
        if eval_expr t cond <> 0 then begin
          (match eval_script t body with
          | _ -> ()
          | exception Continue_exc -> ());
          loop ()
        end
      in
      (try loop () with Break_exc -> ());
      ""
  | args -> fail "wrong # args to while: %d" (List.length args)

let cmd_for t = function
  | [ init; cond; step; body ] ->
      ignore (eval_script t init);
      let rec loop () =
        if eval_expr t cond <> 0 then begin
          (match eval_script t body with
          | _ -> ()
          | exception Continue_exc -> ());
          ignore (eval_script t step);
          loop ()
        end
      in
      (try loop () with Break_exc -> ());
      ""
  | args -> fail "wrong # args to for: %d" (List.length args)

let cmd_proc t = function
  | [ name; params; body ] ->
      let params =
        String.split_on_char ' ' params
        |> List.concat_map (String.split_on_char '\n')
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      Hashtbl.replace t.procs name (params, body);
      ""
  | args -> fail "wrong # args to proc: %d" (List.length args)

let cmd_return _t = function
  | [] -> raise (Return_exc "")
  | [ v ] -> raise (Return_exc v)
  | args -> fail "wrong # args to return: %d" (List.length args)

let cmd_break _t _ = raise Break_exc
let cmd_continue _t _ = raise Continue_exc

let cmd_global t args =
  let frame = current_frame t in
  if frame == t.globals then ""
  else begin
    List.iter (fun name -> Hashtbl.replace frame.glinks name ()) args;
    ""
  end

let lookup_array t name =
  match Hashtbl.find_opt t.arrays name with
  | Some a -> a
  | None -> fail "no kernel array named %S" name

let cmd_kload t = function
  | [ name; idx ] ->
      let a = lookup_array t name in
      let i = int_of t idx in
      if i < 0 || i >= a.len then
        Fault.raise_fault (Fault.Out_of_bounds { access = Fault.Read; addr = i });
      string_of_int (Memory.cells t.mem).(a.base + i)
  | args -> fail "wrong # args to kload: %d" (List.length args)

let cmd_kstore t = function
  | [ name; idx; value ] ->
      let a = lookup_array t name in
      let i = int_of t idx in
      if i < 0 || i >= a.len then
        Fault.raise_fault
          (Fault.Out_of_bounds { access = Fault.Write; addr = i });
      if not a.writable then
        Fault.raise_fault
          (Fault.Protection { access = Fault.Write; addr = a.base + i });
      (Memory.cells t.mem).(a.base + i) <- int_of t value;
      ""
  | args -> fail "wrong # args to kstore: %d" (List.length args)

(* ------------------------------------------------------------------ *)
(* Public API.                                                         *)
(* ------------------------------------------------------------------ *)

let create ?(fuel = max_int) mem =
  let t =
    {
      mem;
      arrays = Hashtbl.create 8;
      procs = Hashtbl.create 8;
      commands = Hashtbl.create 32;
      globals = new_frame ();
      frames = [];
      fuel;
      depth = 0;
    }
  in
  List.iter
    (fun (name, f) -> Hashtbl.replace t.commands name f)
    [
      ("set", cmd_set); ("expr", cmd_expr); ("incr", cmd_incr);
      ("if", cmd_if); ("while", cmd_while); ("for", cmd_for);
      ("proc", cmd_proc); ("return", cmd_return); ("break", cmd_break);
      ("continue", cmd_continue); ("global", cmd_global);
      ("kload", cmd_kload); ("kstore", cmd_kstore);
    ];
  t

let set_fuel t fuel = t.fuel <- fuel

let bind_array t ~name (region : Memory.region) ~writable =
  Hashtbl.replace t.arrays name
    { base = region.Memory.base; len = region.Memory.len; writable }

let bind_command t ~name f = Hashtbl.replace t.commands name f

let define_variable t name value = Hashtbl.replace t.globals.vars name value

let read_variable t name = Hashtbl.find_opt t.globals.vars name

(** Evaluate a script at top level. *)
let eval t (src : string) : (string, Fault.t) result =
  match eval_script t src with
  | v -> Ok v
  | exception Fault.Fault f -> Error f
  | exception Return_exc v -> Ok v
  | exception Break_exc ->
      Error (Fault.Type_error "break outside a loop")
  | exception Continue_exc ->
      Error (Fault.Type_error "continue outside a loop")

(** Invoke a proc previously defined by [eval]. This is how the kernel
    upcalls into a script graft. *)
let call t name (args : string list) : (string, Fault.t) result =
  match dispatch t name args with
  | v -> Ok v
  | exception Fault.Fault f -> Error f
  | exception Return_exc v -> Ok v
  | exception Break_exc -> Error (Fault.Type_error "break outside a loop")
  | exception Continue_exc ->
      Error (Fault.Type_error "continue outside a loop")
