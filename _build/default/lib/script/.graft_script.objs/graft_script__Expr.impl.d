lib/script/expr.ml: Fault Graft_mem Printf String
