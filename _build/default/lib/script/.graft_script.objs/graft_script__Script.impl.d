lib/script/script.ml: Array Buffer Expr Fault Graft_mem Hashtbl List Memory Printf String
