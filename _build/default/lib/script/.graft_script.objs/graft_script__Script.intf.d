lib/script/script.mli: Graft_mem
