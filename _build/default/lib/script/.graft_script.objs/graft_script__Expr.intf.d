lib/script/expr.mli:
