(** The [expr] evaluator of the Tcl-like scripting language: a
    precedence-climbing parser over a flat string, re-run on every
    evaluation (nothing is compiled or cached, as in Tcl 3.7).
    Integer-only, C-like operators, hex literals. *)

(** Evaluate an already-substituted expression string. Returns the
    value and the number of binary operations performed (for fuel
    accounting). Raises [Graft_mem.Fault.Fault] on malformed input or
    division by zero. *)
val eval : string -> int * int
