(** The [expr] evaluator of the Tcl-like scripting language: a
    precedence-climbing parser over a flat string, run every time an
    expression is evaluated. Integer-only, with C-like operators.

    Like Tcl 3.7, nothing is compiled or cached: each evaluation
    re-scans the expression text and round-trips every operand through
    a string, which is precisely the overhead the paper measured at
    three to four orders of magnitude over compiled code. *)

open Graft_mem

type state = { src : string; mutable pos : int; mutable ops : int }

let fail fmt =
  Printf.ksprintf (fun msg -> Fault.raise_fault (Fault.Type_error msg)) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let is_digit c = c >= '0' && c <= '9'

let parse_int st =
  let start = st.pos in
  if peek st = Some '0'
     && st.pos + 1 < String.length st.src
     && (st.src.[st.pos + 1] = 'x' || st.src.[st.pos + 1] = 'X')
  then begin
    st.pos <- st.pos + 2;
    while
      st.pos < String.length st.src
      &&
      let c = st.src.[st.pos] in
      is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
    do
      st.pos <- st.pos + 1
    done
  end
  else
    while st.pos < String.length st.src && is_digit st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> fail "expected integer, found %S" text

(* Operator table: (token, precedence). Two-character operators are
   matched first. *)
let op2 = function
  | "<<" -> Some (8, `Shl)
  | ">>" -> Some (8, `Shr)
  | "<=" -> Some (4, `Le)
  | ">=" -> Some (4, `Ge)
  | "==" -> Some (3, `Eq)
  | "!=" -> Some (3, `Ne)
  | "&&" -> Some (2, `And)
  | "||" -> Some (1, `Or)
  | _ -> None

let op1 = function
  | '<' -> Some (4, `Lt)
  | '>' -> Some (4, `Gt)
  | '|' -> Some (5, `Bor)
  | '^' -> Some (6, `Bxor)
  | '&' -> Some (7, `Band)
  | '+' -> Some (9, `Add)
  | '-' -> Some (9, `Sub)
  | '*' -> Some (10, `Mul)
  | '/' -> Some (10, `Div)
  | '%' -> Some (10, `Mod)
  | _ -> None

let next_op st =
  skip_ws st;
  if st.pos + 1 < String.length st.src then begin
    match op2 (String.sub st.src st.pos 2) with
    | Some (prec, op) -> Some (2, prec, op)
    | None -> (
        match op1 st.src.[st.pos] with
        | Some (prec, op) -> Some (1, prec, op)
        | None -> None)
  end
  else
    match peek st with
    | Some c -> (
        match op1 c with
        | Some (prec, op) -> Some (1, prec, op)
        | None -> None)
    | None -> None

let apply st op a b =
  st.ops <- st.ops + 1;
  match op with
  | `Add -> a + b
  | `Sub -> a - b
  | `Mul -> a * b
  | `Div -> if b = 0 then Fault.raise_fault Fault.Division_by_zero else a / b
  | `Mod -> if b = 0 then Fault.raise_fault Fault.Division_by_zero else a mod b
  | `Shl -> if b < 0 || b > 62 then 0 else a lsl b
  | `Shr -> if b < 0 then 0 else if b > 62 then a asr 62 else a asr b
  | `Band -> a land b
  | `Bor -> a lor b
  | `Bxor -> a lxor b
  | `Lt -> if a < b then 1 else 0
  | `Le -> if a <= b then 1 else 0
  | `Gt -> if a > b then 1 else 0
  | `Ge -> if a >= b then 1 else 0
  | `Eq -> if a = b then 1 else 0
  | `Ne -> if a <> b then 1 else 0
  | `And -> if a <> 0 && b <> 0 then 1 else 0
  | `Or -> if a <> 0 || b <> 0 then 1 else 0

let rec parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match next_op st with
    | Some (width, prec, op) when prec >= min_prec ->
        st.pos <- st.pos + width;
        let rhs = parse_binary st (prec + 1) in
        loop (apply st op lhs rhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  skip_ws st;
  match peek st with
  | Some '-' ->
      st.pos <- st.pos + 1;
      -parse_unary st
  | Some '!' ->
      st.pos <- st.pos + 1;
      if parse_unary st = 0 then 1 else 0
  | Some '~' ->
      st.pos <- st.pos + 1;
      lnot (parse_unary st)
  | Some '(' ->
      st.pos <- st.pos + 1;
      let v = parse_binary st 1 in
      skip_ws st;
      if peek st <> Some ')' then fail "missing ')' in expression";
      st.pos <- st.pos + 1;
      v
  | Some c when is_digit c -> parse_int st
  | Some c -> fail "unexpected character %C in expression %S" c st.src
  | None -> fail "unexpected end of expression %S" st.src

(** Evaluate an already-substituted expression string to an integer.
    Returns the value and the number of binary operations performed
    (used for fuel accounting by the interpreter). *)
let eval (src : string) : int * int =
  let st = { src; pos = 0; ops = 0 } in
  let v = parse_binary st 1 in
  skip_ws st;
  if st.pos <> String.length st.src then
    fail "trailing characters in expression %S" src;
  (v, st.ops + 1)
