(** The hardware-protection technology: extensions live in a user-level
    server and the kernel reaches them by upcall (paper section 4.1).

    The handler runs for real (user-level servers run ordinary native
    code — that is their appeal), while the protection-boundary costs
    the paper analyses — two domain switches plus argument marshalling
    — are charged to the simulated clock. *)

type domain = {
  name : string;
  clock : Simclock.t;
  switch_s : float;  (** one kernel<->user crossing *)
  per_word_s : float;  (** marshalling cost per word *)
  mutable upcalls : int;
  mutable aborted : int;
}

val create :
  ?per_word_s:float ->
  name:string ->
  clock:Simclock.t ->
  switch_s:float ->
  unit ->
  domain

(** Round-trip upcall cost for [words] marshalled words. *)
val cost : domain -> words:int -> float

(** Charge the boundary cost and run the handler. [extra_words]
    accounts for bulk data copied across the boundary beyond the
    argument vector. *)
val upcall : domain -> ?extra_words:int -> (int array -> int) -> int array -> int

(** Run the handler under a wall-clock budget; on overrun the kernel
    "kills the server" and returns [None] — hardware protection's
    answer to runaway extensions. *)
val upcall_with_budget :
  domain ->
  ?extra_words:int ->
  budget_s:float ->
  (int array -> int) ->
  int array ->
  int option

(** The paper's estimate: an upcall mechanism measured on BSD/OS ran
    about 40% quicker than signal delivery; this derives one switch
    cost from a measured per-signal time. *)
val switch_from_signal_time : float -> float
