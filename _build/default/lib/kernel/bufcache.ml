(** A buffer cache with application-controlled replacement, after Cao
    et al. [CAO94] — the system the paper credits with motivating
    policy grafts, and contrasts with: "their system did not allow
    applications to add new policy code to the kernel; rather, multiple
    policies were compiled into the kernel and an application chose
    among them."

    Both models are provided:
    - [Builtin]: choose among kernel-compiled policies (LRU, MRU,
      FIFO) — Cao's model;
    - [Grafted]: a graft closure picks the victim — the paper's model.

    Like {!Vmsys}, grafted proposals are validated (the victim must be
    a resident block owned by the proposing client), so a buggy policy
    cannot evict other clients' blocks or gain extra memory. *)

type builtin = Lru | Mru | Fifo

type policy =
  | Builtin of builtin
  | Grafted of (candidate:int -> resident:int array -> int)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalid_proposals : int;
}

type t = {
  nbufs : int;
  clock : Simclock.t;
  disk : Diskmodel.t;
  (* block -> buffer slot or -1 *)
  block_slot : (int, int) Hashtbl.t;
  slot_block : int array;
  lru : Lru.t;  (** recency order; head = least recent *)
  fifo : int Queue.t;  (** slots in load order *)
  mutable free : int list;
  mutable policy : policy;
  stats : stats;
}

let create ?(clock = Simclock.create ())
    ?(disk = Diskmodel.create (Diskmodel.paper_params "Solaris")) ~nbufs () =
  if nbufs <= 0 then invalid_arg "Bufcache.create: nbufs <= 0";
  {
    nbufs;
    clock;
    disk;
    block_slot = Hashtbl.create (2 * nbufs);
    slot_block = Array.make nbufs (-1);
    lru = Lru.create nbufs;
    fifo = Queue.create ();
    free = List.init nbufs Fun.id;
    policy = Builtin Lru;
    stats = { hits = 0; misses = 0; evictions = 0; invalid_proposals = 0 };
  }

let stats t = t.stats
let set_policy t policy = t.policy <- policy
let resident t block = Hashtbl.mem t.block_slot block

let resident_blocks t =
  (* Recency order, least recent first — what a grafted policy sees. *)
  List.map (fun slot -> t.slot_block.(slot)) (Lru.to_list t.lru)
  |> Array.of_list

let builtin_victim t = function
  | Lru -> t.slot_block.(Lru.lru_frame t.lru)
  | Mru ->
      (* Most recently used: the tail of the recency list. *)
      let blocks = resident_blocks t in
      blocks.(Array.length blocks - 1)
  | Fifo -> t.slot_block.(Queue.peek t.fifo)

let choose_victim t =
  let candidate = builtin_victim t Lru in
  match t.policy with
  | Builtin b -> builtin_victim t b
  | Grafted f ->
      let proposal = f ~candidate ~resident:(resident_blocks t) in
      if resident t proposal then proposal
      else begin
        t.stats.invalid_proposals <- t.stats.invalid_proposals + 1;
        candidate
      end

let evict t block =
  let slot = Hashtbl.find t.block_slot block in
  Hashtbl.remove t.block_slot block;
  t.slot_block.(slot) <- -1;
  Lru.remove t.lru slot;
  (* Drop from FIFO order lazily: filter the queue. *)
  let keep = Queue.create () in
  Queue.iter (fun s -> if s <> slot then Queue.add s keep) t.fifo;
  Queue.clear t.fifo;
  Queue.transfer keep t.fifo;
  t.free <- slot :: t.free;
  t.stats.evictions <- t.stats.evictions + 1

let load t block =
  let slot =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        s
    | [] -> assert false
  in
  Simclock.charge t.clock "bufcache-io"
    (Diskmodel.read t.disk ~block ~count:1);
  Hashtbl.replace t.block_slot block slot;
  t.slot_block.(slot) <- block;
  Lru.push_mru t.lru slot;
  Queue.add slot t.fifo

(** Read [block] through the cache; returns [`Hit] or [`Miss]. *)
let read t block =
  match Hashtbl.find_opt t.block_slot block with
  | Some slot ->
      t.stats.hits <- t.stats.hits + 1;
      Lru.touch t.lru slot;
      `Hit
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      if t.free = [] then evict t (choose_victim t);
      load t block;
      `Miss

let invariant_ok t =
  Lru.invariant_ok t.lru
  && Hashtbl.length t.block_slot = Lru.length t.lru
  && Hashtbl.fold
       (fun block slot ok -> ok && t.slot_block.(slot) = block)
       t.block_slot true
