(** Intrusive doubly-linked LRU list over frame indices, as a VM system
    or buffer cache keeps it: O(1) touch, insert, remove, and an O(n)
    walk from the least-recently-used end — the walk the paper's
    Prioritization graft performs. *)

type t = {
  next : int array;  (** towards MRU *)
  prev : int array;  (** towards LRU *)
  present : bool array;
  mutable head : int;  (** LRU end; -1 when empty *)
  mutable tail : int;  (** MRU end; -1 when empty *)
  mutable size : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity <= 0";
  {
    next = Array.make capacity (-1);
    prev = Array.make capacity (-1);
    present = Array.make capacity false;
    head = -1;
    tail = -1;
    size = 0;
  }

let capacity t = Array.length t.next
let length t = t.size
let is_empty t = t.size = 0
let mem t frame = t.present.(frame)

let check_frame t frame =
  if frame < 0 || frame >= capacity t then
    invalid_arg (Printf.sprintf "Lru: frame %d out of range" frame)

(** Insert [frame] at the MRU end. Raises if already present. *)
let push_mru t frame =
  check_frame t frame;
  if t.present.(frame) then
    invalid_arg (Printf.sprintf "Lru.push_mru: frame %d already present" frame);
  t.present.(frame) <- true;
  t.prev.(frame) <- t.tail;
  t.next.(frame) <- -1;
  if t.tail >= 0 then t.next.(t.tail) <- frame else t.head <- frame;
  t.tail <- frame;
  t.size <- t.size + 1

(** Remove [frame] from anywhere in the list. Raises if absent. *)
let remove t frame =
  check_frame t frame;
  if not t.present.(frame) then
    invalid_arg (Printf.sprintf "Lru.remove: frame %d not present" frame);
  let p = t.prev.(frame) and n = t.next.(frame) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p;
  t.present.(frame) <- false;
  t.prev.(frame) <- -1;
  t.next.(frame) <- -1;
  t.size <- t.size - 1

(** Move [frame] to the MRU end (a cache hit). *)
let touch t frame =
  remove t frame;
  push_mru t frame

(** The eviction candidate: the least-recently-used frame, or -1. *)
let lru_frame t = t.head

(** Walk from LRU to MRU, stopping early when [f] returns [false]. *)
let iter_lru_first t f =
  let rec go frame =
    if frame >= 0 && f frame then go t.next.(frame)
  in
  go t.head

(** Frames in LRU-to-MRU order. *)
let to_list t =
  let acc = ref [] in
  iter_lru_first t (fun frame ->
      acc := frame :: !acc;
      true);
  List.rev !acc

(** Internal-consistency check used by property tests: the list is a
    proper doubly-linked chain containing exactly the present frames. *)
let invariant_ok t =
  let seen = Array.make (capacity t) false in
  let count = ref 0 in
  let ok = ref true in
  let rec walk frame prev_frame =
    if frame >= 0 then begin
      if seen.(frame) || not t.present.(frame) || t.prev.(frame) <> prev_frame
      then ok := false
      else begin
        seen.(frame) <- true;
        incr count;
        walk t.next.(frame) frame
      end
    end
  in
  walk t.head (-1);
  !ok && !count = t.size
  && (t.size > 0 || (t.head = -1 && t.tail = -1))
  && Array.for_all2 (fun s p -> s = p) seen t.present
