(** A HiPEC-style specialized eviction-policy language [LEE94]: a
    handful of instructions interpreted once per page of the LRU queue,
    with the expensive domain primitive (page-set membership) native.
    Forward-only jumps make each per-page run terminate in |program|
    steps and the whole selection in |queue| x |program|. *)

(** Kernel-maintained page-set bitmaps, the native primitive an
    application registers its hot pages in. *)
module Pageset : sig
  type t

  val create : int -> t
  val add : t -> int -> unit
  val remove : t -> int -> unit

  (** False (not an error) for out-of-range pages. *)
  val mem : t -> int -> bool

  val clear : t -> unit
  val of_array : int -> int array -> t
end

type instr =
  | Load_page  (** acc <- current page id *)
  | Load_pos  (** acc <- position in the queue (0 = LRU end) *)
  | And of int
  | Jeq of int * int * int  (** forward offsets *)
  | Jgt of int * int * int
  | In_set of int * int * int  (** (set, jt, jf): native membership *)
  | Select  (** evict the current page *)
  | Skip  (** consider the next page *)
  | Accept_default  (** stop; take the kernel's candidate *)

type program = instr array

val to_string : instr -> string

(** Forward jumps in range, set ids valid, terminal last instruction.
    Linear time. *)
val verify : nsets:int -> program -> (unit, string) result

(** Walk the queue (LRU end first) running the policy per page; the
    selected victim, or [candidate] when every page is skipped or the
    policy asks for the default. *)
val select :
  program ->
  sets:Pageset.t array ->
  lru_pages:int array ->
  candidate:int ->
  int

(** Evict the first page not in set 0 — the canonical hot-set policy. *)
val avoid_hot_set : program
