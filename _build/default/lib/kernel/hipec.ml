(** A HiPEC-style specialized eviction-policy language [LEE94]: "a
    simple, assembler-like, interpreted language designed specifically
    for the task of managing a queue of VM pages. The performance
    impact of executing a program in this language is low, but the
    expressiveness ... is limited (it has only 20 basic instructions)."

    Model: the kernel runs the program once per page, walking the LRU
    queue from the eviction end. The program inspects the current page
    and concludes with [Select] (evict this page), [Skip] (consider the
    next), or [Accept_default] (give up and take the kernel's
    candidate). Jumps are forward-only, so each per-page run terminates
    in at most |program| steps and the whole selection in |queue| x
    |program|.

    The domain-specific power comes from native primitives: [In_set]
    tests membership of the current page in an application-registered
    page set (a kernel-maintained bitmap), so the expensive part of a
    policy like "avoid my hot pages" runs at native speed — which is
    exactly how HiPEC kept its overhead low, and why it could not be
    reused for anything but VM caching. *)

(* ------------------------------------------------------------------ *)
(* Page sets (the native primitive).                                   *)
(* ------------------------------------------------------------------ *)

module Pageset = struct
  type t = { bits : bytes; npages : int }

  let create npages =
    if npages <= 0 then invalid_arg "Pageset.create: npages <= 0";
    { bits = Bytes.make ((npages + 7) / 8) '\000'; npages }

  let check t page =
    if page < 0 || page >= t.npages then
      invalid_arg (Printf.sprintf "Pageset: page %d out of range" page)

  let add t page =
    check t page;
    let i = page lsr 3 and m = 1 lsl (page land 7) in
    Bytes.set t.bits i (Char.chr (Char.code (Bytes.get t.bits i) lor m))

  let remove t page =
    check t page;
    let i = page lsr 3 and m = 1 lsl (page land 7) in
    Bytes.set t.bits i
      (Char.chr (Char.code (Bytes.get t.bits i) land lnot m land 0xFF))

  let mem t page =
    page >= 0 && page < t.npages
    && Char.code (Bytes.unsafe_get t.bits (page lsr 3)) land (1 lsl (page land 7))
       <> 0

  let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

  let of_array npages pages =
    let t = create npages in
    Array.iter (add t) pages;
    t
end

(* ------------------------------------------------------------------ *)
(* The language.                                                       *)
(* ------------------------------------------------------------------ *)

type instr =
  | Load_page  (** acc <- current page id *)
  | Load_pos  (** acc <- position in the queue (0 = LRU end) *)
  | And of int
  | Jeq of int * int * int  (** (k, jt, jf) — forward offsets *)
  | Jgt of int * int * int
  | In_set of int * int * int  (** (set, jt, jf): native membership *)
  | Select  (** evict the current page *)
  | Skip  (** consider the next page *)
  | Accept_default  (** stop and take the kernel's candidate *)

type program = instr array

let to_string = function
  | Load_page -> "ldpage"
  | Load_pos -> "ldpos"
  | And k -> Printf.sprintf "and #0x%x" k
  | Jeq (k, t, f) -> Printf.sprintf "jeq #%d, +%d, +%d" k t f
  | Jgt (k, t, f) -> Printf.sprintf "jgt #%d, +%d, +%d" k t f
  | In_set (s, t, f) -> Printf.sprintf "inset set%d, +%d, +%d" s t f
  | Select -> "select"
  | Skip -> "skip"
  | Accept_default -> "default"

(** Load-time verification: forward jumps in range, set ids valid, and
    the final instruction is terminal. Linear time. *)
let verify ~nsets (p : program) : (unit, string) result =
  let n = Array.length p in
  let exception Bad of string in
  try
    if n = 0 then raise (Bad "empty policy");
    Array.iteri
      (fun i instr ->
        let check_target off =
          if off < 0 then raise (Bad (Printf.sprintf "backward jump at %d" i));
          if i + 1 + off >= n then
            raise (Bad (Printf.sprintf "jump out of range at %d" i))
        in
        (match instr with
        | Jeq (_, t, f) | Jgt (_, t, f) ->
            check_target t;
            check_target f
        | In_set (s, t, f) ->
            if s < 0 || s >= nsets then
              raise (Bad (Printf.sprintf "unknown set %d at %d" s i));
            check_target t;
            check_target f
        | Load_page | Load_pos | And _ | Select | Skip | Accept_default -> ());
        if i = n - 1 then
          match instr with
          | Select | Skip | Accept_default -> ()
          | _ -> raise (Bad "policy does not end with a terminal instruction"))
      p;
    Ok ()
  with Bad msg -> Error msg

type verdict = V_select | V_skip | V_default

(* One per-page run. *)
let run_once (p : program) ~(sets : Pageset.t array) ~page ~pos : verdict =
  let n = Array.length p in
  let acc = ref 0 in
  let pc = ref 0 in
  let verdict = ref V_skip in
  let running = ref true in
  while !running && !pc < n do
    let instr = Array.unsafe_get p !pc in
    incr pc;
    match instr with
    | Load_page -> acc := page
    | Load_pos -> acc := pos
    | And k -> acc := !acc land k
    | Jeq (k, t, f) -> pc := !pc + (if !acc = k then t else f)
    | Jgt (k, t, f) -> pc := !pc + (if !acc > k then t else f)
    | In_set (s, t, f) ->
        pc := !pc + (if Pageset.mem sets.(s) page then t else f)
    | Select ->
        verdict := V_select;
        running := false
    | Skip ->
        verdict := V_skip;
        running := false
    | Accept_default ->
        verdict := V_default;
        running := false
  done;
  !verdict

(** [select p ~sets ~lru_pages ~candidate] walks the queue (LRU end
    first) running the policy per page; returns the selected victim, or
    [candidate] when the policy skips every page or asks for the
    default. *)
let select (p : program) ~(sets : Pageset.t array) ~(lru_pages : int array)
    ~candidate : int =
  let n = Array.length lru_pages in
  let rec go pos =
    if pos >= n then candidate
    else
      match run_once p ~sets ~page:lru_pages.(pos) ~pos with
      | V_select -> lru_pages.(pos)
      | V_default -> candidate
      | V_skip -> go (pos + 1)
  in
  go 0

(** The canonical policy: evict the first page not in set 0 (the
    application's hot set) — two instructions, as HiPEC promised. *)
let avoid_hot_set : program = [| In_set (0, 1, 0); Select; Skip |]
