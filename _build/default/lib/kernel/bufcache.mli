(** A buffer cache with application-controlled replacement, after Cao
    et al. [CAO94]. Both control models are provided: [Builtin]
    selection among kernel-compiled policies (Cao's model) and
    [Grafted] victim selection by a closure (the paper's model), with
    grafted proposals validated against residency. *)

type builtin = Lru | Mru | Fifo

type policy =
  | Builtin of builtin
  | Grafted of (candidate:int -> resident:int array -> int)
      (** [resident] is in LRU-to-MRU order; an invalid proposal falls
          back to LRU and is counted *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalid_proposals : int;
}

type t

val create : ?clock:Simclock.t -> ?disk:Diskmodel.t -> nbufs:int -> unit -> t
val stats : t -> stats
val set_policy : t -> policy -> unit
val resident : t -> int -> bool

(** Resident blocks, least recently used first. *)
val resident_blocks : t -> int array

(** Read a block through the cache; misses charge a disk-model read to
    the simulated clock. *)
val read : t -> int -> [ `Hit | `Miss ]

val invariant_ok : t -> bool
