lib/kernel/upcall.mli: Simclock
