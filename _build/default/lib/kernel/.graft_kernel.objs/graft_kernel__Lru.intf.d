lib/kernel/lru.mli:
