lib/kernel/sched.ml: Array Float List Simclock
