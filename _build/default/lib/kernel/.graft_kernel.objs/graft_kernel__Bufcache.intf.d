lib/kernel/bufcache.mli: Diskmodel Simclock
