lib/kernel/diskmodel.ml: List
