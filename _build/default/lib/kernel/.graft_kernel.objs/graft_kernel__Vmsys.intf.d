lib/kernel/vmsys.mli: Diskmodel Simclock
