lib/kernel/netpkt.ml: Array Bytes Char Graft_util Queue
