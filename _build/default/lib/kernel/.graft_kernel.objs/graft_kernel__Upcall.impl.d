lib/kernel/upcall.ml: Array Graft_util Printf Simclock
