lib/kernel/hipec.mli:
