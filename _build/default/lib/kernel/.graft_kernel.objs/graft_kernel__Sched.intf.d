lib/kernel/sched.mli: Simclock
