lib/kernel/logdisk.ml: Array Diskmodel
