lib/kernel/simclock.ml: Hashtbl List Option
