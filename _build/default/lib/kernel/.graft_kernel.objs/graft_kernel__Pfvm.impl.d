lib/kernel/pfvm.ml: Array Netpkt Printf
