lib/kernel/pfvm.mli: Netpkt
