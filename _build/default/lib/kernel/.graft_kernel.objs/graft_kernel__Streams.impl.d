lib/kernel/streams.ml: Buffer Bytes Char Graft_md5 Graft_mem Graft_util List Printf String
