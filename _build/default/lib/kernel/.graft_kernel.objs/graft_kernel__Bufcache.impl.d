lib/kernel/bufcache.ml: Array Diskmodel Fun Hashtbl List Lru Queue Simclock
