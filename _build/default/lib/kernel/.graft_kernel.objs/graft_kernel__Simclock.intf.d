lib/kernel/simclock.mli:
