lib/kernel/diskmodel.mli:
