lib/kernel/lru.ml: Array List Printf
