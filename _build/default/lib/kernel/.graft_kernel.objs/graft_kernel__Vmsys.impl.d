lib/kernel/vmsys.ml: Array Diskmodel Fun List Lru Printf Simclock
