lib/kernel/hipec.ml: Array Bytes Char Printf
