lib/kernel/logdisk.mli: Diskmodel
