(** Intrusive doubly-linked LRU list over frame indices, as a VM system
    or buffer cache keeps it: O(1) touch, insert, remove, and an O(n)
    walk from the least-recently-used end — the walk the paper's
    Prioritization graft performs. *)

type t

(** [create capacity] for frames [0 .. capacity-1], all absent. *)
val create : int -> t

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

(** Insert at the MRU end. Raises [Invalid_argument] if present or out
    of range. *)
val push_mru : t -> int -> unit

(** Remove from anywhere. Raises [Invalid_argument] if absent. *)
val remove : t -> int -> unit

(** Move to the MRU end (a cache hit). *)
val touch : t -> int -> unit

(** The eviction candidate: the least-recently-used frame, or -1. *)
val lru_frame : t -> int

(** Walk from LRU to MRU, stopping early when [f] returns [false]. *)
val iter_lru_first : t -> (int -> bool) -> unit

(** Frames in LRU-to-MRU order. *)
val to_list : t -> int list

(** Internal-consistency check used by property tests. *)
val invariant_ok : t -> bool
