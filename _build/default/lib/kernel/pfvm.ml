(** A BPF-style packet-filter virtual machine — the paper's example of
    a {e small specialized} extension language ([MOGUL87, MCCAN93]):
    "the performance of interpreted packet filters is close to that of
    compiled code, but ... the expressiveness is limited to the
    specific domain."

    The design inherits BPF's safety-by-construction properties:
    - all jumps are {e forward-only} relative offsets, so every program
      terminates in at most [length program] steps — no fuel needed;
    - packet loads are offset-checked; an out-of-range load rejects the
      packet (BPF semantics) rather than faulting;
    - the accumulator/constant instruction set cannot express stores,
      so the filter cannot touch kernel state at all.

    [verify] is the load-time check (forward jumps in range, return
    reachable on every path, no fall-through). *)

type instr =
  | Ld8 of int  (** acc <- pkt\[k\] *)
  | Ld16 of int  (** acc <- big-endian 16 bits at k *)
  | Ld32 of int
  | Ldlen  (** acc <- packet length *)
  | Add of int
  | And of int
  | Or of int
  | Rsh of int
  | Jeq of int * int * int  (** (k, jt, jf): relative forward offsets *)
  | Jgt of int * int * int
  | Jset of int * int * int  (** acc land k <> 0 *)
  | Ret of int  (** 0 = reject, nonzero = accept *)

type program = instr array

let to_string = function
  | Ld8 k -> Printf.sprintf "ld8 [%d]" k
  | Ld16 k -> Printf.sprintf "ld16 [%d]" k
  | Ld32 k -> Printf.sprintf "ld32 [%d]" k
  | Ldlen -> "ldlen"
  | Add k -> Printf.sprintf "add #%d" k
  | And k -> Printf.sprintf "and #0x%x" k
  | Or k -> Printf.sprintf "or #0x%x" k
  | Rsh k -> Printf.sprintf "rsh #%d" k
  | Jeq (k, t, f) -> Printf.sprintf "jeq #0x%x, +%d, +%d" k t f
  | Jgt (k, t, f) -> Printf.sprintf "jgt #%d, +%d, +%d" k t f
  | Jset (k, t, f) -> Printf.sprintf "jset #0x%x, +%d, +%d" k t f
  | Ret k -> Printf.sprintf "ret #%d" k

(** Load-time verification: every jump lands strictly forward and in
    range, and no instruction falls off the end (every path reaches a
    [Ret]). Linear time. *)
let verify (p : program) : (unit, string) result =
  let n = Array.length p in
  let exception Bad of string in
  try
    if n = 0 then raise (Bad "empty filter");
    Array.iteri
      (fun i instr ->
        let check_target off =
          if off < 0 then raise (Bad (Printf.sprintf "backward jump at %d" i));
          if i + 1 + off >= n then
            raise (Bad (Printf.sprintf "jump out of range at %d" i))
        in
        (match instr with
        | Jeq (_, t, f) | Jgt (_, t, f) | Jset (_, t, f) ->
            check_target t;
            check_target f
        | Ld8 k | Ld16 k | Ld32 k ->
            if k < 0 then raise (Bad (Printf.sprintf "negative offset at %d" i))
        | Ret _ | Ldlen | Add _ | And _ | Or _ | Rsh _ -> ());
        (* A non-return, non-jump final instruction falls off the end;
           jumps are covered by check_target above. *)
        if i = n - 1 then
          match instr with
          | Ret _ -> ()
          | _ -> raise (Bad "filter does not end with ret"))
      p;
    Ok ()
  with Bad msg -> Error msg

exception Reject

(** [run p pkt] returns the accept value (0 = reject). Guaranteed to
    terminate without fuel: the pc increases strictly. *)
let run (p : program) (pkt : Netpkt.t) : int =
  let n = Array.length p in
  let len = Netpkt.length pkt in
  let load size k =
    if k < 0 || k + size > len then raise Reject
    else
      match size with
      | 1 -> Netpkt.get8 pkt k
      | 2 -> Netpkt.get16 pkt k
      | _ -> Netpkt.get32 pkt k
  in
  let acc = ref 0 in
  let pc = ref 0 in
  let result = ref 0 in
  (try
     let running = ref true in
     while !running && !pc < n do
       let instr = Array.unsafe_get p !pc in
       incr pc;
       match instr with
       | Ld8 k -> acc := load 1 k
       | Ld16 k -> acc := load 2 k
       | Ld32 k -> acc := load 4 k
       | Ldlen -> acc := len
       | Add k -> acc := !acc + k
       | And k -> acc := !acc land k
       | Or k -> acc := !acc lor k
       | Rsh k -> acc := !acc lsr (k land 62)
       | Jeq (k, t, f) -> pc := !pc + (if !acc = k then t else f)
       | Jgt (k, t, f) -> pc := !pc + (if !acc > k then t else f)
       | Jset (k, t, f) -> pc := !pc + (if !acc land k <> 0 then t else f)
       | Ret v ->
           result := v;
           running := false
     done
   with Reject -> result := 0);
  !result

let accepts p pkt = run p pkt <> 0

(* ------------------------------------------------------------------ *)
(* Filter builders for the common cases.                               *)
(* ------------------------------------------------------------------ *)

(** "ip and <protocol> and dst port <port>" — the canonical demux
    filter (e.g. UDP port 53 to catch DNS). *)
let proto_dst_port ~protocol ~port : program =
  [|
    Ld16 12;
    Jeq (Netpkt.ethertype_ip, 0, 5) (* not ip -> ret 0 *);
    Ld8 23;
    Jeq (protocol, 0, 3);
    Ld16 36;
    Jeq (port, 0, 1);
    Ret 1;
    Ret 0;
  |]

(** "ip and traffic between hosts a and b (either direction)". *)
let between ~a ~b : program =
  [|
    Ld16 12;
    Jeq (Netpkt.ethertype_ip, 0, 8);
    Ld32 26;
    Jeq (a, 0, 2) (* src = a ? check dst = b : try src = b *);
    Ld32 30;
    Jeq (b, 3, 4);
    Jeq (b, 0, 3) (* acc still holds src *);
    Ld32 30;
    Jeq (a, 0, 1);
    Ret 1;
    Ret 0;
  |]
