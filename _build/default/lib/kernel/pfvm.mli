(** A BPF-style packet-filter virtual machine — the paper's example of
    a small {e specialized} extension language ([MOGUL87, MCCAN93]):
    "the performance of interpreted packet filters is close to that of
    compiled code, but ... the expressiveness is limited to the
    specific domain."

    Safety by construction: jumps are forward-only (every program
    terminates in at most |program| steps, no fuel needed), packet
    loads are range-checked (out of range rejects, BPF-style), and the
    instruction set has no stores, so a filter cannot touch kernel
    state at all. *)

type instr =
  | Ld8 of int
  | Ld16 of int  (** big-endian *)
  | Ld32 of int
  | Ldlen
  | Add of int
  | And of int
  | Or of int
  | Rsh of int
  | Jeq of int * int * int  (** (k, jt, jf): relative forward offsets *)
  | Jgt of int * int * int
  | Jset of int * int * int
  | Ret of int  (** 0 = reject *)

type program = instr array

val to_string : instr -> string

(** Load-time verification: forward jumps in range, non-negative load
    offsets, no fall-through off the end. Linear time. *)
val verify : program -> (unit, string) result

(** Accept value (0 = reject). Terminates without fuel. *)
val run : program -> Netpkt.t -> int

val accepts : program -> Netpkt.t -> bool

(** "ip and <protocol> and dst port <port>". *)
val proto_dst_port : protocol:int -> port:int -> program

(** "ip traffic between hosts a and b", either direction. *)
val between : a:int -> b:int -> program
