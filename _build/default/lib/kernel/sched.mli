(** A simulated process scheduler with a grafted pick-next hook — the
    paper's third Prioritization example (section 3.1, the
    client-server scenario). The default policy is round-robin; a
    graft may reorder each decision, validated so it can only pick a
    runnable process. *)

type state = Runnable | Blocked | Done

type proc = {
  pid : int;
  pname : string;
  mutable pstate : state;
  mutable remaining_s : float;
  mutable scheduled : int;
  mutable wait_s : float;  (** time spent runnable but not running *)
  mutable last_ready_s : float;
}

(** Pick a pid from [runnable] (round-robin order, kernel's candidate
    first). *)
type pick_hook = candidate:int -> runnable:int array -> int

type t = {
  clock : Simclock.t;
  quantum_s : float;
  procs : proc array;
  mutable rr_cursor : int;
  mutable hook : pick_hook option;
  mutable invalid_picks : int;
  mutable context_switches : int;
}

(** [create specs] with [specs] as (name, seconds of work). *)
val create : ?clock:Simclock.t -> ?quantum_s:float -> (string * float) list -> t

val set_hook : t -> pick_hook option -> unit
val proc : t -> int -> proc
val clock : t -> Simclock.t

(** Runnable pids in round-robin order. *)
val runnable_pids : t -> int array

val block : t -> int -> unit
val unblock : t -> int -> unit

(** One scheduling decision + quantum; the pid that ran, or [None]. *)
val step : t -> int option

(** Run until everything is done or blocked; steps taken. *)
val run : ?max_steps:int -> t -> int
