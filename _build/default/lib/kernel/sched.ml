(** A simulated process scheduler with a grafted pick-next hook — the
    paper's third Prioritization example (section 3.1): "no scheduling
    algorithm is appropriate for all application mixes ... a
    client-server application may not want the server to be scheduled
    unless there is an outstanding client request, in which case it
    should be scheduled ahead of any client."

    Processes run for a quantum when scheduled; the scheduler charges
    simulated time. The default policy is round-robin; a graft may
    reorder each decision, validated so it can only pick a runnable
    process. *)

type state = Runnable | Blocked | Done

type proc = {
  pid : int;
  pname : string;
  mutable pstate : state;
  mutable remaining_s : float;  (** work left *)
  mutable scheduled : int;
  mutable wait_s : float;  (** time spent runnable but not running *)
  mutable last_ready_s : float;
}

(** The hook: pick a pid from [runnable] (in round-robin order,
    kernel's candidate first). *)
type pick_hook = candidate:int -> runnable:int array -> int

type t = {
  clock : Simclock.t;
  quantum_s : float;
  procs : proc array;
  mutable rr_cursor : int;
  mutable hook : pick_hook option;
  mutable invalid_picks : int;
  mutable context_switches : int;
}

let create ?(clock = Simclock.create ()) ?(quantum_s = 0.01) specs =
  let procs =
    Array.of_list
      (List.mapi
         (fun i (pname, work_s) ->
           {
             pid = i;
             pname;
             pstate = Runnable;
             remaining_s = work_s;
             scheduled = 0;
             wait_s = 0.0;
             last_ready_s = 0.0;
           })
         specs)
  in
  { clock; quantum_s; procs; rr_cursor = 0; hook = None; invalid_picks = 0;
    context_switches = 0 }

let set_hook t hook = t.hook <- hook
let proc t pid = t.procs.(pid)
let clock t = t.clock

let runnable_pids t =
  let n = Array.length t.procs in
  (* Round-robin order starting after the last scheduled process. *)
  let out = ref [] in
  for k = n - 1 downto 0 do
    let pid = (t.rr_cursor + k) mod n in
    if t.procs.(pid).pstate = Runnable then out := pid :: !out
  done;
  Array.of_list !out

let block t pid = t.procs.(pid).pstate <- Blocked

let unblock t pid =
  let p = t.procs.(pid) in
  if p.pstate = Blocked then begin
    p.pstate <- Runnable;
    p.last_ready_s <- Simclock.now t.clock
  end

(** Run one scheduling decision + quantum. Returns the pid that ran,
    or [None] if nothing is runnable. *)
let step t =
  let runnable = runnable_pids t in
  if Array.length runnable = 0 then None
  else begin
    let candidate = runnable.(0) in
    let choice =
      match t.hook with
      | None -> candidate
      | Some hook ->
          let pick = hook ~candidate ~runnable in
          if Array.exists (fun pid -> pid = pick) runnable then pick
          else begin
            t.invalid_picks <- t.invalid_picks + 1;
            candidate
          end
    in
    let p = t.procs.(choice) in
    let now = Simclock.now t.clock in
    (* Account waiting time for everyone else runnable. *)
    Array.iter
      (fun pid ->
        if pid <> choice then begin
          let q = t.procs.(pid) in
          q.wait_s <- q.wait_s +. t.quantum_s
        end)
      runnable;
    ignore now;
    let slice = Float.min t.quantum_s p.remaining_s in
    Simclock.charge t.clock ("run:" ^ p.pname) slice;
    p.remaining_s <- p.remaining_s -. slice;
    p.scheduled <- p.scheduled + 1;
    t.context_switches <- t.context_switches + 1;
    if p.remaining_s <= 1e-12 then p.pstate <- Done;
    t.rr_cursor <- (choice + 1) mod Array.length t.procs;
    Some choice
  end

(** Run until every process is done or blocked, bounded by
    [max_steps]. Returns the number of steps taken. *)
let run ?(max_steps = 1_000_000) t =
  let rec go steps =
    if steps >= max_steps then steps
    else match step t with None -> steps | Some _ -> go (steps + 1)
  in
  go 0
