(** Abstract syntax of GEL as produced by the parser, before name
    resolution and typechecking. *)

type ty = Tint | Tword | Tbool

let ty_to_string = function Tint -> "int" | Tword -> "word" | Tbool -> "bool"

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Lshr
  | Band | Bor | Bxor
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or  (** short-circuiting *)

type unop = Neg | Not | Bnot

type expr = { desc : expr_desc; pos : Srcloc.pos }

and expr_desc =
  | Int_lit of int
  | Bool_lit of bool
  | Var of string
  | Index of string * expr                 (* a[i] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Cast of ty * expr                      (* int(e) / word(e) / bool(e) *)

type stmt = { sdesc : stmt_desc; spos : Srcloc.pos }

and stmt_desc =
  | Decl of string * ty option * expr      (* var x : ty = e; *)
  | Assign of string * expr
  | Store of string * expr * expr          (* a[i] = e; *)
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Break
  | Continue
  | Expr_stmt of expr

and block = stmt list

type param = { pname : string; pty : ty }

type global =
  | Gvar of { name : string; gty : ty; init : expr option; gpos : Srcloc.pos }
  | Garray of {
      name : string;
      size : int;
      elem : ty;  (** element type; [int] unless declared [: word] *)
      shared : bool;  (** mapped by the kernel rather than allocated *)
      init : expr list option;  (** constant initializer list *)
      gpos : Srcloc.pos;
    }
  | Gextern of {
      name : string;
      params : ty list;
      ret : ty option;
      gpos : Srcloc.pos;
    }
  | Gfn of {
      name : string;
      params : param list;
      ret : ty option;
      body : block;
      gpos : Srcloc.pos;
    }

type program = global list

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>" | Lshr -> ">>>"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let unop_to_string = function Neg -> "-" | Not -> "!" | Bnot -> "~"
