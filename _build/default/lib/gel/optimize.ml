(** IR-level optimizer: constant folding, algebraic identities, branch
    pruning, and dead-code elimination.

    Every rewrite is fault-preserving: expressions that can fault at
    runtime (division/modulo with a non-constant or zero divisor, array
    loads, calls) are never deleted or folded past. Fuel consumption is
    an execution budget, not observable semantics, so optimized
    programs may run on less fuel.

    The cross-engine fuzzer (test/test_fuzz.ml) checks optimized
    programs against unoptimized ones on all engines. *)

(* An expression is pure when evaluating it can neither fault nor have
   effects — only those may be deleted or duplicated. *)
let rec pure (e : Ir.expr) =
  match e with
  | Ir.Const _ | Ir.Local _ | Ir.Global _ -> true
  | Ir.Arith (_, (Ir.Div | Ir.Mod), a, b) -> (
      pure a && match b with Ir.Const n -> n <> 0 | _ -> false)
  | Ir.Arith (_, _, a, b) | Ir.Cmp (_, a, b) | Ir.And (a, b) | Ir.Or (a, b) ->
      pure a && pure b
  | Ir.Not a | Ir.Bnot (_, a) | Ir.Neg (_, a) | Ir.ToWord a | Ir.ToBool a ->
      pure a
  | Ir.Load _ (* may fault *) | Ir.Call _ | Ir.CallExt _ -> false

let rec expr (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Const _ | Ir.Local _ | Ir.Global _ -> e
  | Ir.Load (a, i) -> Ir.Load (a, expr i)
  | Ir.Arith (kind, op, a, b) -> arith kind op (expr a) (expr b)
  | Ir.Cmp (c, a, b) -> (
      let a = expr a and b = expr b in
      match (a, b) with
      | Ir.Const x, Ir.Const y -> Ir.Const (Interp.compare_vals c x y)
      | _ -> Ir.Cmp (c, a, b))
  | Ir.Not a -> (
      match expr a with
      | Ir.Const n -> Ir.Const (if n = 0 then 1 else 0)
      | Ir.Not b -> b (* operands of Not are bool-typed: 0/1 *)
      | a -> Ir.Not a)
  | Ir.Bnot (k, a) -> (
      match expr a with
      | Ir.Const n ->
          Ir.Const (if k = Ir.Kword then Wordops.bnot n else lnot n)
      | a -> Ir.Bnot (k, a))
  | Ir.Neg (k, a) -> (
      match expr a with
      | Ir.Const n -> Ir.Const (if k = Ir.Kword then Wordops.neg n else -n)
      | a -> Ir.Neg (k, a))
  | Ir.And (a, b) -> (
      match expr a with
      | Ir.Const 0 -> Ir.Const 0
      | Ir.Const _ -> expr b (* b is bool-typed *)
      | a -> Ir.And (a, expr b))
  | Ir.Or (a, b) -> (
      match expr a with
      | Ir.Const 0 -> expr b
      | Ir.Const _ -> Ir.Const 1
      | a -> Ir.Or (a, expr b))
  | Ir.Call (f, args) -> Ir.Call (f, Array.map expr args)
  | Ir.CallExt (f, args) -> Ir.CallExt (f, Array.map expr args)
  | Ir.ToWord a -> (
      match expr a with
      | Ir.Const n -> Ir.Const (Wordops.of_int n)
      | a -> Ir.ToWord a)
  | Ir.ToBool a -> (
      match expr a with
      | Ir.Const n -> Ir.Const (if n = 0 then 0 else 1)
      | (Ir.Cmp _ | Ir.Not _ | Ir.And _ | Ir.Or _ | Ir.ToBool _) as b ->
          b (* already 0/1 *)
      | a -> Ir.ToBool a)

and arith kind op a b =
  match (a, b) with
  | Ir.Const x, Ir.Const y -> (
      (* Fold through the interpreter's own semantics so engines and
         optimizer cannot drift; never fold a faulting division. *)
      match Interp.arith kind op x y with
      | v -> Ir.Const v
      | exception Graft_mem.Fault.Fault _ -> Ir.Arith (kind, op, a, b))
  | _ -> (
      (* Algebraic identities. Forms that would delete a subexpression
         require it to be pure. *)
      match (op, a, b) with
      | Ir.Add, Ir.Const 0, e | Ir.Add, e, Ir.Const 0 -> e
      | Ir.Sub, e, Ir.Const 0 -> e
      | Ir.Mul, Ir.Const 1, e | Ir.Mul, e, Ir.Const 1 -> e
      | Ir.Mul, Ir.Const 0, e when pure e -> Ir.Const 0
      | Ir.Mul, e, Ir.Const 0 when pure e -> Ir.Const 0
      | Ir.Bor, Ir.Const 0, e | Ir.Bor, e, Ir.Const 0 -> e
      | Ir.Bxor, Ir.Const 0, e | Ir.Bxor, e, Ir.Const 0 -> e
      | Ir.Band, Ir.Const 0, e when pure e -> Ir.Const 0
      | Ir.Band, e, Ir.Const 0 when pure e -> Ir.Const 0
      | (Ir.Shl | Ir.Shr | Ir.Lshr), e, Ir.Const 0 -> e
      | Ir.Div, e, Ir.Const 1 -> e
      | _ -> Ir.Arith (kind, op, a, b))

let rec stmt (s : Ir.stmt) : Ir.stmt list =
  match s with
  | Ir.Set_local (slot, e) -> [ Ir.Set_local (slot, expr e) ]
  | Ir.Set_global (slot, e) -> [ Ir.Set_global (slot, expr e) ]
  | Ir.Store (a, i, v) -> [ Ir.Store (a, expr i, expr v) ]
  | Ir.If (c, t, f) -> (
      match expr c with
      | Ir.Const 0 -> block f
      | Ir.Const _ -> block t
      | c -> [ Ir.If (c, block t, block f) ])
  | Ir.While (c, body, step) -> (
      match expr c with
      | Ir.Const 0 -> []
      | c -> [ Ir.While (c, block body, block step) ])
  | Ir.Return e -> [ Ir.Return (Option.map expr e) ]
  | Ir.Break | Ir.Continue -> [ s ]
  | Ir.Eval e ->
      let e = expr e in
      if pure e then [] else [ Ir.Eval e ]

and block stmts =
  (* Statements after an always-taken Return/Break/Continue are dead. *)
  let rec go = function
    | [] -> []
    | s :: rest -> (
        let out = stmt s in
        match List.rev out with
        | (Ir.Return _ | Ir.Break | Ir.Continue) :: _ -> out
        | _ -> out @ go rest)
  in
  go stmts

let func (f : Ir.func) = { f with Ir.body = block f.Ir.body }

(** Optimize every function of a program. The layout (globals, arrays,
    externs) is untouched, so an optimized program links and runs
    against the same memory image. *)
let program (p : Ir.program) = { p with Ir.funcs = Array.map func p.Ir.funcs }
