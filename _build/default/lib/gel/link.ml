(** Linking a typechecked GEL program into a graft address space.

    The loader allocates the program's global scalars and private arrays
    inside the supplied [Memory.t], binds shared arrays to kernel-mapped
    regions, and resolves extern declarations against the kernel's host
    function table. The result is an executable image consumed by the
    reference interpreter and by the VM compilers. *)

type host = { hname : string; hfn : int array -> int }

type image = {
  prog : Ir.program;
  mem : Graft_mem.Memory.t;
  global_base : int;  (** cell address of scalar slot 0 *)
  arr_base : int array;  (** per-array base cell address *)
  arr_len : int array;  (** per-array element count *)
  arr_writable : bool array;  (** kernel-granted write permission *)
  host : (int array -> int) array;  (** indexed like [prog.externs] *)
}

(** Cells needed to link [prog] into a fresh memory, excluding shared
    windows (which the kernel maps) and the reserved NIL cell. *)
let footprint (prog : Ir.program) =
  let scalars = Array.length prog.globals in
  Array.fold_left
    (fun acc a -> if a.Ir.ashared then acc else acc + a.Ir.asize)
    scalars prog.arrays

let link (prog : Ir.program) ~(mem : Graft_mem.Memory.t)
    ~(shared : (string * Graft_mem.Memory.region) list)
    ~(hosts : host list) : (image, string) result =
  let open Graft_mem in
  try
    let nglobals = Array.length prog.globals in
    let global_base =
      if nglobals = 0 then 0
      else begin
        let r =
          Memory.alloc mem ~name:"$globals" ~len:nglobals ~perm:Memory.perm_rw
        in
        Array.iteri
          (fun i g -> (Memory.cells mem).(r.Memory.base + i) <- g.Ir.ginit)
          prog.globals;
        r.Memory.base
      end
    in
    let n = Array.length prog.arrays in
    let arr_base = Array.make n 0 in
    let arr_len = Array.make n 0 in
    let arr_writable = Array.make n false in
    Array.iteri
      (fun i a ->
        if a.Ir.ashared then begin
          match List.assoc_opt a.Ir.aname shared with
          | None ->
              failwith
                (Printf.sprintf "shared array %s not mapped by the kernel"
                   a.Ir.aname)
          | Some region ->
              if region.Memory.len < a.Ir.asize then
                failwith
                  (Printf.sprintf
                     "shared array %s needs %d cells but window %s has %d"
                     a.Ir.aname a.Ir.asize region.Memory.name
                     region.Memory.len);
              arr_base.(i) <- region.Memory.base;
              arr_len.(i) <- a.Ir.asize;
              arr_writable.(i) <- region.Memory.perm.Memory.write
        end
        else begin
          let r =
            Memory.alloc mem ~name:a.Ir.aname ~len:a.Ir.asize
              ~perm:Memory.perm_rw
          in
          (match a.Ir.ainit with
          | Some init -> Memory.blit_in mem r init
          | None -> ());
          arr_base.(i) <- r.Memory.base;
          arr_len.(i) <- a.Ir.asize;
          arr_writable.(i) <- true
        end)
      prog.arrays;
    let host =
      Array.map
        (fun (e : Ir.ext) ->
          match List.find_opt (fun h -> h.hname = e.Ir.ename) hosts with
          | Some h -> h.hfn
          | None ->
              failwith
                (Printf.sprintf "extern %s not provided by the kernel"
                   e.Ir.ename))
        prog.externs
    in
    Ok { prog; mem; global_base; arr_base; arr_len; arr_writable; host }
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

(** Convenience for tests and examples: link into a fresh memory sized
    to fit, with no shared windows. *)
let link_fresh ?(extra = 0) ?(hosts = []) prog =
  let mem = Graft_mem.Memory.create (footprint prog + extra + 16) in
  match link prog ~mem ~shared:[] ~hosts with
  | Ok image -> Ok image
  | Error _ as e -> e
