lib/gel/optimize.ml: Array Graft_mem Interp Ir List Option Wordops
