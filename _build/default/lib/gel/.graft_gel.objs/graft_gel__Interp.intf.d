lib/gel/interp.mli: Graft_mem Ir Link
