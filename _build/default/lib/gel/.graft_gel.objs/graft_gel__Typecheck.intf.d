lib/gel/typecheck.mli: Ast Ir
