lib/gel/link.ml: Array Graft_mem Ir List Memory Printf
