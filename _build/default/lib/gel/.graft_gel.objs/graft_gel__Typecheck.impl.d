lib/gel/typecheck.ml: Array Ast Hashtbl Ir List Srcloc Wordops
