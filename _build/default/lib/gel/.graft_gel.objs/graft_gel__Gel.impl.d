lib/gel/gel.ml: Ast Interp Ir Lexer Link Optimize Parser Pretty Srcloc Token Typecheck Wordops
