lib/gel/ast.ml: Srcloc
