lib/gel/lexer.ml: List Srcloc String Token
