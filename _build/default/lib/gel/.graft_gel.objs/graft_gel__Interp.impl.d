lib/gel/interp.ml: Array Fault Graft_mem Ir Link List Memory Printf Wordops
