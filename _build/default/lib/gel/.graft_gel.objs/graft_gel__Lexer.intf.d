lib/gel/lexer.mli: Srcloc Token
