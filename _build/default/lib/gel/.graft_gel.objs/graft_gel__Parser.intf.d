lib/gel/parser.mli: Ast
