lib/gel/srcloc.ml: Printf
