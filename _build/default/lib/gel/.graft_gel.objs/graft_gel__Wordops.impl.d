lib/gel/wordops.ml:
