lib/gel/ir.ml: Array Ast List
