lib/gel/pretty.ml: Array Ast Buffer Ir List Printf String
