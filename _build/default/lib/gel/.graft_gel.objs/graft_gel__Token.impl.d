lib/gel/token.ml:
