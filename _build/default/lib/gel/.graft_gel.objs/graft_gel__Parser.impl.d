lib/gel/parser.ml: Ast Lexer List Srcloc Token
