(** Reference interpreter for GEL IR: a direct AST walk.

    This is the semantic oracle the VM backends are differentially
    tested against, and it doubles as a measured technology in its own
    right (an AST-walking interpreter sits between a bytecode VM and a
    source-level interpreter in the paper's taxonomy). Every access is
    checked; fuel is decremented per evaluated node so runaway grafts
    are preempted. *)

(** [run image ~entry ~args ~fuel] invokes [entry] with integer
    [args]. Returns the result, the fault that stopped the graft, or an
    error for a bad entry point. *)
val run :
  Link.image ->
  entry:string ->
  args:int array ->
  fuel:int ->
  (int, [ `Fault of Graft_mem.Fault.t | `Bad_entry of string ]) result

(** Shared operator semantics, reused by the register VM's evaluator so
    arithmetic cannot drift between engines. Both raise
    [Graft_mem.Fault.Fault] on division by zero. *)

val arith : Ir.kind -> Ir.arith -> int -> int -> int

(** 0/1 result of a comparison. *)
val compare_vals : Ir.cmp -> int -> int -> int
