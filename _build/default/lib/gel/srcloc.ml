(** Source positions and compile-time errors for GEL. *)

type pos = { line : int; col : int }

let pos0 = { line = 1; col = 1 }

type error = { pos : pos; msg : string }

exception Error of error

let error pos fmt =
  Printf.ksprintf (fun msg -> raise (Error { pos; msg })) fmt

let to_string { pos; msg } =
  Printf.sprintf "line %d, col %d: %s" pos.line pos.col msg
