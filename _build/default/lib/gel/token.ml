(** Lexical tokens of GEL. *)

type t =
  | INT of int
  | IDENT of string
  (* keywords *)
  | KW_FN | KW_VAR | KW_ARRAY | KW_SHARED | KW_EXTERN
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_TRUE | KW_FALSE
  | KW_INT | KW_WORD | KW_BOOL
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COLON | COMMA
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | SHL | SHR | LSHR
  | AMP | PIPE | CARET | TILDE | BANG
  | LT | LE | GT | GE | EQEQ | NE
  | AMPAMP | PIPEPIPE
  | ASSIGN
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_FN -> "fn" | KW_VAR -> "var" | KW_ARRAY -> "array"
  | KW_SHARED -> "shared" | KW_EXTERN -> "extern"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_TRUE -> "true" | KW_FALSE -> "false"
  | KW_INT -> "int" | KW_WORD -> "word" | KW_BOOL -> "bool"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COLON -> ":" | COMMA -> ","
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | SHL -> "<<" | SHR -> ">>" | LSHR -> ">>>"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NE -> "!="
  | AMPAMP -> "&&" | PIPEPIPE -> "||"
  | ASSIGN -> "="
  | EOF -> "<eof>"
