(** Recursive-descent parser for GEL with precedence climbing. *)

type t = {
  lexer : Lexer.t;
  mutable tok : Token.t;
  mutable pos : Srcloc.pos;
}

let advance p =
  let tok, pos = Lexer.next p.lexer in
  p.tok <- tok;
  p.pos <- pos

let create src =
  let lexer = Lexer.create src in
  let tok, pos = Lexer.next lexer in
  { lexer; tok; pos }


let expect p tok =
  if p.tok = tok then advance p
  else
    Srcloc.error p.pos "expected %s, found %s" (Token.to_string tok)
      (Token.to_string p.tok)

let expect_ident p =
  match p.tok with
  | Token.IDENT name ->
      advance p;
      name
  | t -> Srcloc.error p.pos "expected identifier, found %s" (Token.to_string t)

let parse_ty p =
  match p.tok with
  | Token.KW_INT ->
      advance p;
      Ast.Tint
  | Token.KW_WORD ->
      advance p;
      Ast.Tword
  | Token.KW_BOOL ->
      advance p;
      Ast.Tbool
  | t -> Srcloc.error p.pos "expected a type, found %s" (Token.to_string t)

(* Binary operator precedence; higher binds tighter. Mirrors C except
   that bitwise ops bind tighter than comparisons (avoiding C's famous
   precedence trap). *)
let binop_of_token = function
  | Token.PIPEPIPE -> Some (Ast.Or, 1)
  | Token.AMPAMP -> Some (Ast.And, 2)
  | Token.EQEQ -> Some (Ast.Eq, 3)
  | Token.NE -> Some (Ast.Ne, 3)
  | Token.LT -> Some (Ast.Lt, 4)
  | Token.LE -> Some (Ast.Le, 4)
  | Token.GT -> Some (Ast.Gt, 4)
  | Token.GE -> Some (Ast.Ge, 4)
  | Token.PIPE -> Some (Ast.Bor, 5)
  | Token.CARET -> Some (Ast.Bxor, 6)
  | Token.AMP -> Some (Ast.Band, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.LSHR -> Some (Ast.Lshr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let mk pos desc = { Ast.desc; pos }

let rec parse_expr p = parse_binary p 1

and parse_binary p min_prec =
  let lhs = parse_unary p in
  let rec loop lhs =
    match binop_of_token p.tok with
    | Some (op, prec) when prec >= min_prec ->
        let pos = p.pos in
        advance p;
        let rhs = parse_binary p (prec + 1) in
        loop (mk pos (Ast.Binary (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary p =
  let pos = p.pos in
  match p.tok with
  | Token.MINUS ->
      advance p;
      mk pos (Ast.Unary (Ast.Neg, parse_unary p))
  | Token.BANG ->
      advance p;
      mk pos (Ast.Unary (Ast.Not, parse_unary p))
  | Token.TILDE ->
      advance p;
      mk pos (Ast.Unary (Ast.Bnot, parse_unary p))
  | _ -> parse_primary p

and parse_primary p =
  let pos = p.pos in
  match p.tok with
  | Token.INT n ->
      advance p;
      mk pos (Ast.Int_lit n)
  | Token.KW_TRUE ->
      advance p;
      mk pos (Ast.Bool_lit true)
  | Token.KW_FALSE ->
      advance p;
      mk pos (Ast.Bool_lit false)
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
  | (Token.KW_INT | Token.KW_WORD | Token.KW_BOOL) as t ->
      (* Cast syntax: int(e), word(e), bool(e). *)
      let ty =
        match t with
        | Token.KW_INT -> Ast.Tint
        | Token.KW_WORD -> Ast.Tword
        | _ -> Ast.Tbool
      in
      advance p;
      expect p Token.LPAREN;
      let e = parse_expr p in
      expect p Token.RPAREN;
      mk pos (Ast.Cast (ty, e))
  | Token.IDENT name -> begin
      advance p;
      match p.tok with
      | Token.LPAREN ->
          advance p;
          let args = parse_args p in
          mk pos (Ast.Call (name, args))
      | Token.LBRACKET ->
          advance p;
          let idx = parse_expr p in
          expect p Token.RBRACKET;
          mk pos (Ast.Index (name, idx))
      | _ -> mk pos (Ast.Var name)
    end
  | t -> Srcloc.error pos "expected an expression, found %s" (Token.to_string t)

and parse_args p =
  if p.tok = Token.RPAREN then begin
    advance p;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr p in
      match p.tok with
      | Token.COMMA ->
          advance p;
          go (e :: acc)
      | Token.RPAREN ->
          advance p;
          List.rev (e :: acc)
      | t ->
          Srcloc.error p.pos "expected ',' or ')', found %s" (Token.to_string t)
    in
    go []
  end

let mks pos sdesc = { Ast.sdesc; spos = pos }

(* A "simple statement" (no trailing semicolon): declaration, assignment,
   array store, or expression. Used in for-headers and as the core of
   expression statements. *)
let rec parse_simple_stmt p =
  let pos = p.pos in
  match p.tok with
  | Token.KW_VAR ->
      advance p;
      let name = expect_ident p in
      let ty =
        if p.tok = Token.COLON then begin
          advance p;
          Some (parse_ty p)
        end
        else None
      in
      expect p Token.ASSIGN;
      let e = parse_expr p in
      mks pos (Ast.Decl (name, ty, e))
  | Token.IDENT name -> begin
      advance p;
      match p.tok with
      | Token.ASSIGN ->
          advance p;
          let e = parse_expr p in
          mks pos (Ast.Assign (name, e))
      | Token.LBRACKET ->
          advance p;
          let idx = parse_expr p in
          expect p Token.RBRACKET;
          if p.tok = Token.ASSIGN then begin
            advance p;
            let e = parse_expr p in
            mks pos (Ast.Store (name, idx, e))
          end
          else
            (* It was an expression beginning with an index; indexes are
               pure so a bare "a[i];" is allowed as an expression stmt. *)
            let idx_expr = mk pos (Ast.Index (name, idx)) in
            let full = parse_binary_continue p idx_expr in
            mks pos (Ast.Expr_stmt full)
      | Token.LPAREN ->
          advance p;
          let args = parse_args p in
          let call = mk pos (Ast.Call (name, args)) in
          let full = parse_binary_continue p call in
          mks pos (Ast.Expr_stmt full)
      | _ ->
          let var = mk pos (Ast.Var name) in
          let full = parse_binary_continue p var in
          mks pos (Ast.Expr_stmt full)
    end
  | _ ->
      let e = parse_expr p in
      mks pos (Ast.Expr_stmt e)

(* Continue a binary expression whose left operand was already parsed
   (needed because statement parsing consumes the leading identifier). *)
and parse_binary_continue p lhs =
  let rec loop lhs =
    match binop_of_token p.tok with
    | Some (op, _prec) ->
        let pos = p.pos in
        advance p;
        let rhs = parse_binary p 1 in
        loop (mk pos (Ast.Binary (op, lhs, rhs)))
    | None -> lhs
  in
  loop lhs

let rec parse_stmt p =
  let pos = p.pos in
  match p.tok with
  | Token.KW_IF ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let then_blk = parse_block p in
      let else_blk =
        if p.tok = Token.KW_ELSE then begin
          advance p;
          if p.tok = Token.KW_IF then [ parse_stmt p ] else parse_block p
        end
        else []
      in
      mks pos (Ast.If (cond, then_blk, else_blk))
  | Token.KW_WHILE ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let body = parse_block p in
      mks pos (Ast.While (cond, body))
  | Token.KW_FOR ->
      advance p;
      expect p Token.LPAREN;
      let init =
        if p.tok = Token.SEMI then None else Some (parse_simple_stmt p)
      in
      expect p Token.SEMI;
      let cond = if p.tok = Token.SEMI then None else Some (parse_expr p) in
      expect p Token.SEMI;
      let step =
        if p.tok = Token.RPAREN then None else Some (parse_simple_stmt p)
      in
      expect p Token.RPAREN;
      let body = parse_block p in
      mks pos (Ast.For (init, cond, step, body))
  | Token.KW_RETURN ->
      advance p;
      if p.tok = Token.SEMI then begin
        advance p;
        mks pos (Ast.Return None)
      end
      else begin
        let e = parse_expr p in
        expect p Token.SEMI;
        mks pos (Ast.Return (Some e))
      end
  | Token.KW_BREAK ->
      advance p;
      expect p Token.SEMI;
      mks pos Ast.Break
  | Token.KW_CONTINUE ->
      advance p;
      expect p Token.SEMI;
      mks pos Ast.Continue
  | _ ->
      let s = parse_simple_stmt p in
      expect p Token.SEMI;
      s

and parse_block p =
  expect p Token.LBRACE;
  let rec go acc =
    if p.tok = Token.RBRACE then begin
      advance p;
      List.rev acc
    end
    else go (parse_stmt p :: acc)
  in
  go []

let parse_params p =
  expect p Token.LPAREN;
  if p.tok = Token.RPAREN then begin
    advance p;
    []
  end
  else begin
    let rec go acc =
      let pname = expect_ident p in
      expect p Token.COLON;
      let pty = parse_ty p in
      let param = { Ast.pname; pty } in
      match p.tok with
      | Token.COMMA ->
          advance p;
          go (param :: acc)
      | Token.RPAREN ->
          advance p;
          List.rev (param :: acc)
      | t ->
          Srcloc.error p.pos "expected ',' or ')', found %s" (Token.to_string t)
    in
    go []
  end

let parse_global p =
  let pos = p.pos in
  match p.tok with
  | Token.KW_VAR ->
      advance p;
      let name = expect_ident p in
      expect p Token.COLON;
      let gty = parse_ty p in
      let init =
        if p.tok = Token.ASSIGN then begin
          advance p;
          Some (parse_expr p)
        end
        else None
      in
      expect p Token.SEMI;
      Ast.Gvar { name; gty; init; gpos = pos }
  | Token.KW_ARRAY | Token.KW_SHARED ->
      let shared = p.tok = Token.KW_SHARED in
      advance p;
      if shared then expect p Token.KW_ARRAY;
      let name = expect_ident p in
      expect p Token.LBRACKET;
      let size =
        match p.tok with
        | Token.INT n ->
            advance p;
            n
        | t ->
            Srcloc.error p.pos "expected array size, found %s"
              (Token.to_string t)
      in
      expect p Token.RBRACKET;
      let elem =
        if p.tok = Token.COLON then begin
          advance p;
          parse_ty p
        end
        else Ast.Tint
      in
      let init =
        if p.tok = Token.ASSIGN then begin
          advance p;
          expect p Token.LBRACE;
          let rec go acc =
            let e = parse_expr p in
            match p.tok with
            | Token.COMMA ->
                advance p;
                (* allow trailing comma before '}' *)
                if p.tok = Token.RBRACE then begin
                  advance p;
                  List.rev (e :: acc)
                end
                else go (e :: acc)
            | Token.RBRACE ->
                advance p;
                List.rev (e :: acc)
            | t ->
                Srcloc.error p.pos "expected ',' or '}', found %s"
                  (Token.to_string t)
          in
          Some (go [])
        end
        else None
      in
      expect p Token.SEMI;
      if size <= 0 then Srcloc.error pos "array %s has non-positive size" name;
      if shared && init <> None then
        Srcloc.error pos "shared array %s cannot have an initializer" name;
      (match init with
      | Some elems when List.length elems > size ->
          Srcloc.error pos "array %s: %d initializers for %d elements" name
            (List.length elems) size
      | _ -> ());
      Ast.Garray { name; size; elem; shared; init; gpos = pos }
  | Token.KW_EXTERN ->
      advance p;
      expect p Token.KW_FN;
      let name = expect_ident p in
      expect p Token.LPAREN;
      let params =
        if p.tok = Token.RPAREN then begin
          advance p;
          []
        end
        else begin
          let rec go acc =
            let ty = parse_ty p in
            match p.tok with
            | Token.COMMA ->
                advance p;
                go (ty :: acc)
            | Token.RPAREN ->
                advance p;
                List.rev (ty :: acc)
            | t ->
                Srcloc.error p.pos "expected ',' or ')', found %s"
                  (Token.to_string t)
          in
          go []
        end
      in
      let ret =
        if p.tok = Token.COLON then begin
          advance p;
          Some (parse_ty p)
        end
        else None
      in
      expect p Token.SEMI;
      Ast.Gextern { name; params; ret; gpos = pos }
  | Token.KW_FN ->
      advance p;
      let name = expect_ident p in
      let params = parse_params p in
      let ret =
        if p.tok = Token.COLON then begin
          advance p;
          Some (parse_ty p)
        end
        else None
      in
      let body = parse_block p in
      Ast.Gfn { name; params; ret; body; gpos = pos }
  | t ->
      Srcloc.error pos "expected a declaration, found %s" (Token.to_string t)

(** Parse a whole program. Raises [Srcloc.Error] on syntax errors. *)
let parse_program src =
  let p = create src in
  let rec go acc =
    if p.tok = Token.EOF then List.rev acc else go (parse_global p :: acc)
  in
  go []

