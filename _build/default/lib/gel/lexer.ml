(** Hand-written lexer for GEL. Supports decimal and 0x hex literals,
    line comments [//] and block comments [/* ... */]. *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let create src = { src; pos = 0; line = 1; col = 1 }

let location lx = { Srcloc.line = lx.line; col = lx.col }

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when peek_char2 lx = Some '/' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | Some '/' when peek_char2 lx = Some '*' ->
      let start = location lx in
      advance lx;
      advance lx;
      let rec to_close () =
        match (peek_char lx, peek_char2 lx) with
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | None, _ -> Srcloc.error start "unterminated block comment"
        | Some _, _ ->
            advance lx;
            to_close ()
      in
      to_close ();
      skip_ws lx
  | _ -> ()

let keyword_of_ident = function
  | "fn" -> Some Token.KW_FN
  | "var" -> Some Token.KW_VAR
  | "array" -> Some Token.KW_ARRAY
  | "shared" -> Some Token.KW_SHARED
  | "extern" -> Some Token.KW_EXTERN
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "true" -> Some Token.KW_TRUE
  | "false" -> Some Token.KW_FALSE
  | "int" -> Some Token.KW_INT
  | "word" -> Some Token.KW_WORD
  | "bool" -> Some Token.KW_BOOL
  | _ -> None

let lex_number lx =
  let start = lx.pos in
  let loc = location lx in
  let hex =
    peek_char lx = Some '0'
    && (peek_char2 lx = Some 'x' || peek_char2 lx = Some 'X')
  in
  if hex then begin
    advance lx;
    advance lx;
    let digits_start = lx.pos in
    while (match peek_char lx with Some c -> is_hex c | None -> false) do
      advance lx
    done;
    if lx.pos = digits_start then Srcloc.error loc "empty hex literal";
    let text = String.sub lx.src start (lx.pos - start) in
    match int_of_string_opt text with
    | Some n -> Token.INT n
    | None -> Srcloc.error loc "hex literal out of range: %s" text
  end
  else begin
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    let text = String.sub lx.src start (lx.pos - start) in
    match int_of_string_opt text with
    | Some n -> Token.INT n
    | None -> Srcloc.error loc "integer literal out of range: %s" text
  end

let lex_ident lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  let text = String.sub lx.src start (lx.pos - start) in
  match keyword_of_ident text with Some kw -> kw | None -> Token.IDENT text

(** Next token and its starting position. *)
let next lx : Token.t * Srcloc.pos =
  skip_ws lx;
  let loc = location lx in
  let tok =
    match peek_char lx with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_ident_start c -> lex_ident lx
    | Some c ->
        let two t =
          advance lx;
          advance lx;
          t
        in
        let one t =
          advance lx;
          t
        in
        (match (c, peek_char2 lx) with
        | '<', Some '<' -> two Token.SHL
        | '<', Some '=' -> two Token.LE
        | '<', _ -> one Token.LT
        | '>', Some '>' ->
            advance lx;
            advance lx;
            if peek_char lx = Some '>' then begin
              advance lx;
              Token.LSHR
            end
            else Token.SHR
        | '>', Some '=' -> two Token.GE
        | '>', _ -> one Token.GT
        | '=', Some '=' -> two Token.EQEQ
        | '=', _ -> one Token.ASSIGN
        | '!', Some '=' -> two Token.NE
        | '!', _ -> one Token.BANG
        | '&', Some '&' -> two Token.AMPAMP
        | '&', _ -> one Token.AMP
        | '|', Some '|' -> two Token.PIPEPIPE
        | '|', _ -> one Token.PIPE
        | '+', _ -> one Token.PLUS
        | '-', _ -> one Token.MINUS
        | '*', _ -> one Token.STAR
        | '/', _ -> one Token.SLASH
        | '%', _ -> one Token.PERCENT
        | '^', _ -> one Token.CARET
        | '~', _ -> one Token.TILDE
        | '(', _ -> one Token.LPAREN
        | ')', _ -> one Token.RPAREN
        | '{', _ -> one Token.LBRACE
        | '}', _ -> one Token.RBRACE
        | '[', _ -> one Token.LBRACKET
        | ']', _ -> one Token.RBRACKET
        | ';', _ -> one Token.SEMI
        | ':', _ -> one Token.COLON
        | ',', _ -> one Token.COMMA
        | _ -> Srcloc.error loc "unexpected character %C" c)
  in
  (tok, loc)

(** Tokenize a whole source string (for tests). *)
let tokenize src =
  let lx = create src in
  let rec go acc =
    let tok, pos = next lx in
    if tok = Token.EOF then List.rev ((tok, pos) :: acc)
    else go ((tok, pos) :: acc)
  in
  go []
