(** Recursive-descent parser for GEL with precedence climbing.

    Precedence, tightest first: unary; [* / %]; [+ -]; shifts; [&];
    [^]; [|]; comparisons; [&&]; [||]. Note that unlike C, the bitwise
    operators bind tighter than comparisons. *)

(** Parse a whole program. Raises [Srcloc.Error] on syntax errors. *)
val parse_program : string -> Ast.program
