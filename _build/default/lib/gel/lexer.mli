(** Hand-written lexer for GEL: decimal and [0x] hex literals, line
    ([//]) and block ([/* ... */]) comments, and the full operator set
    including the logical shift [>>>]. *)

type t

val create : string -> t

(** Next token and its starting position. Raises [Srcloc.Error] on
    malformed input (bad character, unterminated comment, literal out
    of range). *)
val next : t -> Token.t * Srcloc.pos

(** Tokenize a whole source string, ending with [EOF] (for tests). *)
val tokenize : string -> (Token.t * Srcloc.pos) list
