(** Semantics of GEL's [word] type: unsigned 32-bit arithmetic with
    silent wrap-around, the behaviour MD5 depends on (paper section 5.5,
    "computation modulo 2^32"). Word values are represented as OCaml
    ints maintained in [0, 2^32); every operation re-establishes that
    invariant. Shift amounts are taken modulo 32, like hardware. *)

let mask = 0xFFFFFFFF

let of_int v = v land mask
let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = a * b land mask
let band a b = a land b
let bor a b = a lor b
let bxor a b = a lxor b
let bnot a = lnot a land mask
let neg a = -a land mask
let shl a n = (a lsl (n land 31)) land mask
let shr a n = a lsr (n land 31) (* word >> is logical: no sign bit *)
let rotl a n =
  let n = n land 31 in
  if n = 0 then a else ((a lsl n) lor (a lsr (32 - n))) land mask

(** Division and modulus; callers must reject zero divisors first. *)
let div a b = a / b
let rem a b = a mod b

(** Semantics of [int] shifts: amounts taken modulo 64 on the 63-bit
    host int (63 saturates), arithmetic right shift for [>>]. *)
let int_shl a n =
  let n = n land 63 in
  if n > 62 then 0 else a lsl n

let int_shr a n =
  let n = n land 63 in
  if n > 62 then a asr 62 else a asr n

let int_lshr a n =
  let n = n land 63 in
  if n > 62 then 0 else (a land max_int) lsr n
