(** Name resolution, type checking, and lowering of GEL ASTs to
    {!Ir}.

    GEL is strict about types (the Modula-3-like discipline the paper
    leans on): [int], [word], and [bool] never mix implicitly, with the
    single ergonomic exception that an integer literal adopts the type
    its context demands. Non-void functions must return on every path;
    [break]/[continue] are rejected outside loops; global and array
    initializers must be compile-time constants. *)

(** Raises [Srcloc.Error] with a position and message on any
    violation. *)
val check_program : Ast.program -> Ir.program

(** Compile-time constant evaluation, exposed for tests. *)
val const_eval : Ast.expr -> int
