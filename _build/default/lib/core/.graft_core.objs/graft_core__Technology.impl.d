lib/core/technology.ml: List
