lib/core/manager.mli: Graft_kernel Graft_mem Runners Taxonomy Technology
