lib/core/manager.ml: Buffer Bytes Fault Graft_kernel Graft_mem Hashtbl Printf Runners Taxonomy Technology
