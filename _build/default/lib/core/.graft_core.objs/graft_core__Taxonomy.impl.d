lib/core/taxonomy.ml:
