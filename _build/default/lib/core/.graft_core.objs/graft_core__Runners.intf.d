lib/core/runners.mli: Graft_kernel Graft_regvm Graft_util Technology
