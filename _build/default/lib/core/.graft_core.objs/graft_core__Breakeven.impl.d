lib/core/breakeven.ml: List
