(** The graft manager: the kernel-side registry that loads grafts,
    attaches them to hook points, meters their faults, and disables
    misbehaving ones — the machinery that makes every technology except
    unsafe C survivable (paper sections 1 and 4).

    A graft that faults more than its budget is detached and the kernel
    reverts to its default policy. If an {e unsafe} graft faults, the
    manager raises {!Kernel_panic}: with no protection there is nothing
    to contain the failure, which is the reliability argument the paper
    opens with. *)

exception Kernel_panic of string

type state = Loaded | Attached | Disabled of Graft_mem.Fault.t

type graft = {
  g_name : string;
  tech : Technology.t;
  structure : Taxonomy.structure;
  motivation : Taxonomy.motivation;
  max_faults : int;
  mutable state : state;
  mutable invocations : int;
  mutable faults : int;
}

type t

val create : unit -> t

(** Register a graft. Raises [Invalid_argument] on duplicate names. *)
val register :
  t ->
  name:string ->
  tech:Technology.t ->
  structure:Taxonomy.structure ->
  motivation:Taxonomy.motivation ->
  ?max_faults:int ->
  unit ->
  graft

val find : t -> string -> graft option
val grafts : t -> graft list
val state_name : state -> string

(** Attach an eviction graft to a VM subsystem. [hot_pages] supplies
    the application's current hot list at each eviction; the kernel
    exports it and its LRU chain into the graft's window, asks the
    graft to choose, and falls back to its own candidate whenever the
    graft is disabled or faults. *)
val attach_evict :
  t ->
  graft_name:string ->
  Graft_kernel.Vmsys.t ->
  Runners.evict ->
  hot_pages:(unit -> int array) ->
  unit

(** Attach an MD5 runner as a stream filter; data is staged and
    fingerprinted at [finish]. Returns the filter and a digest query
    ([None] until finished or when the graft was disabled). *)
val attach_md5_filter :
  t ->
  graft_name:string ->
  Runners.md5 ->
  capacity:int ->
  Graft_kernel.Streams.filter * (unit -> string option)

(** Wrap a logical-disk policy so its faults are metered; a disabled
    policy degrades to identity (in-place) mapping. *)
val attach_logdisk :
  t ->
  graft_name:string ->
  Graft_kernel.Logdisk.policy ->
  Graft_kernel.Logdisk.policy
