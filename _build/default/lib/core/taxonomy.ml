(** The paper's graft taxonomy (section 3): why code is grafted into
    the kernel, and the three structural classes most grafts fall
    into. *)

type motivation =
  | Policy  (** control a kernel policy decision *)
  | Performance  (** migrate application code to avoid copies/upcalls *)
  | Functionality  (** add new capability to the kernel *)

type structure =
  | Prioritization
      (** select the highest-priority item from a list (VM eviction,
          buffer-cache victim, scheduling) *)
  | Stream  (** a filter inserted into a data stream (MD5, compression) *)
  | Black_box  (** inputs, state, one output (ACLs, logical disk) *)

let motivation_name = function
  | Policy -> "policy"
  | Performance -> "performance"
  | Functionality -> "functionality"

let structure_name = function
  | Prioritization -> "prioritization"
  | Stream -> "stream"
  | Black_box -> "black box"

(** The paper's representative graft for each structure. *)
let representative = function
  | Prioritization -> "VM page eviction"
  | Stream -> "MD5 fingerprinting"
  | Black_box -> "Logical Disk"
