(* Quickstart: write a kernel extension ("graft") in GEL once, run it
   under several extension technologies, and watch the safety story —
   out-of-bounds grafts fault cleanly and runaway grafts are preempted.

   Run with: dune exec examples/quickstart.exe *)

open Graft_gel
open Graft_mem

(* A tiny Prioritization-style graft: score candidates and return the
   index of the best one. *)
let source =
  {|
shared array scores[16];

fn best(n : int) : int {
  var best_i = 0;
  var best_v = scores[0];
  for (var i = 1; i < n; i = i + 1) {
    if (scores[i] > best_v) { best_v = scores[i]; best_i = i; }
  }
  return best_i;
}

fn spin() : int {
  while (true) { }
  return 0;
}

fn wild(i : int) : int {
  return scores[i];
}
|}

let () =
  (* 1. Compile and link the graft into a fresh power-of-two memory,
     with the kernel-shared window mapped read-only. *)
  let prog = Gel.compile_exn source in
  let mem = Memory.create 1024 in
  let window = Memory.alloc mem ~name:"scores" ~len:16 ~perm:Memory.perm_ro in
  Memory.blit_in mem window [| 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8 |];
  let image =
    match Link.link prog ~mem ~shared:[ ("scores", window) ] ~hosts:[] with
    | Ok image -> image
    | Error msg -> failwith msg
  in

  (* 2. The same graft, three execution technologies. *)
  print_endline "-- best(12) under three technologies --";
  let fuel = 100_000 in

  (match Interp.run image ~entry:"best" ~args:[| 12 |] ~fuel with
  | Ok v -> Printf.printf "  AST interpreter      : index %d\n" v
  | Error _ -> assert false);

  let bytecode = Graft_stackvm.Stackvm.load_exn image in
  (match Graft_stackvm.Vm.run bytecode ~entry:"best" ~args:[| 12 |] ~fuel with
  | Ok v -> Printf.printf "  bytecode VM (Java)   : index %d\n" v
  | Error _ -> assert false);

  let sfi = Graft_regvm.Regvm.load_exn image in
  (match Graft_regvm.Machine.run sfi ~entry:"best" ~args:[| 12 |] ~fuel with
  | Ok o ->
      Printf.printf "  register VM + SFI    : index %d (%d instructions)\n"
        o.Graft_regvm.Machine.value o.Graft_regvm.Machine.instructions
  | Error _ -> assert false);

  (* 3. Safety: a wild access faults instead of corrupting the kernel. *)
  print_endline "-- wild(9999): out-of-bounds access --";
  (match Interp.run image ~entry:"wild" ~args:[| 9999 |] ~fuel with
  | Error (`Fault f) ->
      Printf.printf "  contained: %s\n" (Fault.to_string f)
  | _ -> assert false);

  (* 4. Safety: an infinite loop is preempted when its fuel runs out. *)
  print_endline "-- spin(): runaway graft --";
  (match Graft_stackvm.Vm.run bytecode ~entry:"spin" ~args:[||] ~fuel:5000 with
  | Error (`Fault Fault.Fuel_exhausted) ->
      print_endline "  preempted: CPU quantum exhausted"
  | _ -> assert false);

  (* 5. The kernel carries on: the healthy entry point still works. *)
  (match Interp.run image ~entry:"best" ~args:[| 12 |] ~fuel with
  | Ok v -> Printf.printf "-- kernel survived; best(12) is still %d --\n" v
  | Error _ -> assert false)
