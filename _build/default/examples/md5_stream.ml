(* The paper's Stream graft in its natural habitat (section 3.2): a
   kernel filter chain between the storage system and the application.
   An executable image flows disk -> MD5 fingerprint graft -> XOR
   cipher -> sink; the fingerprint must match one computed directly,
   and the interesting question is whether each technology can keep up
   with the disk (Table 5's MD5/disk ratio).

   Run with: dune exec examples/md5_stream.exe *)

open Graft_kernel
open Graft_core

let file_bytes = 262144

let () =
  let rng = Graft_util.Prng.create 0x57E4L in
  let file = Graft_workload.Filedata.executable_like rng file_bytes in
  let expect = Graft_md5.Md5.to_hex (Graft_md5.Md5.digest_bytes file) in
  Printf.printf "fingerprinting a %dKB executable image\n" (file_bytes / 1024);
  Printf.printf "reference digest: %s\n\n" expect;
  let era_disk = Diskmodel.create (Diskmodel.paper_params "Solaris") in
  let disk_s = Diskmodel.stream_time era_disk file_bytes in
  Printf.printf "%-22s %12s %10s %6s %s\n" "technology" "compute" "MD5/disk"
    "match" "(1995 Solaris disk)";
  List.iter
    (fun tech ->
      let manager = Manager.create () in
      ignore
        (Manager.register manager ~name:"fp" ~tech
           ~structure:Taxonomy.Stream ~motivation:Taxonomy.Functionality ());
      let runner = Runners.md5 tech ~capacity:file_bytes in
      let filter, get_digest =
        Manager.attach_md5_filter manager ~graft_name:"fp" runner
          ~capacity:file_bytes
      in
      let chain =
        Streams.build
          [ filter; Streams.xor_filter ~seed:99L ]
          ~sink:(fun _ -> ())
      in
      let elapsed, () =
        Graft_util.Timer.time_it (fun () ->
            (* The kernel reads the file in 64KB chunks, as the paper
               assumes. *)
            let pos = ref 0 in
            while !pos < file_bytes do
              let n = min 65536 (file_bytes - !pos) in
              Streams.push chain (Bytes.sub file !pos n);
              pos := !pos + n
            done;
            Streams.finish chain)
      in
      let ok = get_digest () = Some expect in
      Printf.printf "%-22s %12s %10.2f %6s\n" (Technology.name tech)
        (Graft_util.Timer.pp_seconds elapsed)
        (elapsed /. disk_s)
        (if ok then "yes" else "NO");
      if not ok then exit 1)
    [
      Technology.Unsafe_c; Technology.Safe_lang; Technology.Sfi_write_jump;
      Technology.Bytecode_vm;
    ];
  Printf.printf
    "\nMD5/disk < 1: the fingerprint hides inside the disk transfer.\n\
     The paper found compiled technologies under 1.0 and Java at 30x+;\n\
     run the full Table 5 bench for the Tcl row.\n"
