(* Hardware protection end-to-end: the eviction graft lives in a
   user-level server and every kernel consultation pays an upcall
   (paper section 4.1 and Figure 1). We run the same TPC-B rescan
   trace with the graft in-kernel (safe language) and behind upcalls at
   several boundary costs, and compare total simulated time: I/O saved
   by the graft vs protection-boundary tax.

   Run with: dune exec examples/upcall_server.exe *)

open Graft_kernel
open Graft_core
open Graft_workload

let nframes = 200
let noise = 150

(* One rescan trace (as in eviction_db.ml); returns (faults, sim time). *)
let run_trace ~attach =
  let db = Tpcb.create () in
  let clock = Simclock.create () in
  let disk = Diskmodel.create (Diskmodel.paper_params "Solaris") in
  let vm =
    Vmsys.create ~clock ~disk
      { Vmsys.nframes; npages = db.Tpcb.npages; pages_per_fault = 1 }
  in
  let refs, hot = Tpcb.scan_subtree db ~l3_index:7 in
  attach vm clock hot;
  let rng = Graft_util.Prng.create 0xF19L in
  let touch page = ignore (Vmsys.access vm page) in
  Array.iter touch refs;
  for _ = 1 to noise do
    let path, _ = Tpcb.random_lookup rng db in
    Array.iter touch path
  done;
  Array.iter touch refs;
  ((Vmsys.stats vm).Vmsys.faults, Simclock.now clock)

let attach_runner runner hot vm =
  let manager = Manager.create () in
  ignore
    (Manager.register manager ~name:"hotlist" ~tech:runner.Runners.e_tech
       ~structure:Taxonomy.Prioritization ~motivation:Taxonomy.Policy ());
  Manager.attach_evict manager ~graft_name:"hotlist" vm runner
    ~hot_pages:(fun () -> hot)

let () =
  let faults0, t0 = run_trace ~attach:(fun _ _ _ -> ()) in
  Printf.printf "%-34s %5d faults   %s simulated\n" "no graft (pure LRU)"
    faults0
    (Graft_util.Timer.pp_seconds t0);
  let faults1, t1 =
    run_trace ~attach:(fun vm _ hot ->
        attach_runner
          (Runners.evict Technology.Safe_lang ~capacity_nodes:(2 * nframes) ())
          hot vm)
  in
  Printf.printf "%-34s %5d faults   %s simulated\n" "in-kernel graft (safe-lang)"
    faults1
    (Graft_util.Timer.pp_seconds t1);
  List.iter
    (fun switch_us ->
      let faults, t =
        run_trace ~attach:(fun vm clock hot ->
            let domain =
              Upcall.create ~name:"evictsrv" ~clock
                ~switch_s:(switch_us *. 1e-6) ()
            in
            attach_runner
              (Runners.evict_upcall ~domain ~capacity_nodes:(2 * nframes) ())
              hot vm)
      in
      Printf.printf "%-34s %5d faults   %s simulated\n"
        (Printf.sprintf "upcall server (%.0fus/switch)" switch_us)
        faults
        (Graft_util.Timer.pp_seconds t))
    [ 5.0; 50.0; 2000.0 ];
  print_endline
    "\nThe upcall server saves the same faults; its boundary tax only\n\
     matters once switches cost milliseconds — because this trace\n\
     consults the graft a few hundred times. The paper's Figure 1 is\n\
     the fine-grained limit: consult on every eviction at ~us costs\n\
     and the tax swallows the savings."
