(* The paper's motivating scenario (section 3.1): a TPC-B-style
   database server publishes a hot list — the data pages it is about to
   scan — and a Prioritization graft keeps those pages resident.

   A subtree scan alternates with unrelated traffic. Pure LRU evicts
   the subtree's pages just before they are rescanned; the hot-list
   graft redirects each eviction to a page the application does not
   need. We run the same trace with and without the graft and compare
   fault counts and simulated I/O time.

   Run with: dune exec examples/eviction_db.exe *)

open Graft_kernel
open Graft_core
open Graft_workload

let nframes = 200
let noise_pages = 150

let run_trace ~with_graft =
  let db = Tpcb.create () in
  let clock = Simclock.create () in
  let disk = Diskmodel.create (Diskmodel.paper_params "Solaris") in
  let vm =
    Vmsys.create ~clock ~disk
      { Vmsys.nframes; npages = db.Tpcb.npages; pages_per_fault = 1 }
  in
  let refs, hot = Tpcb.scan_subtree db ~l3_index:7 in
  (if with_graft then begin
     let manager = Manager.create () in
     ignore
       (Manager.register manager ~name:"hotlist" ~tech:Technology.Safe_lang
          ~structure:Taxonomy.Prioritization ~motivation:Taxonomy.Policy ());
     let runner =
       Runners.evict Technology.Safe_lang ~capacity_nodes:(2 * nframes) ()
     in
     Manager.attach_evict manager ~graft_name:"hotlist" vm runner
       ~hot_pages:(fun () -> hot)
   end);
  let rng = Graft_util.Prng.create 0xDBL in
  (* Scan the subtree, interleave unrelated lookups, scan it again. *)
  let touch page = ignore (Vmsys.access vm page) in
  Array.iter touch refs;
  let faults_before = (Vmsys.stats vm).Vmsys.faults in
  for _ = 1 to noise_pages do
    let path, _ = Tpcb.random_lookup rng db in
    Array.iter touch path
  done;
  let rescan_start_faults = (Vmsys.stats vm).Vmsys.faults in
  Array.iter touch refs;
  let stats = Vmsys.stats vm in
  let rescan_faults = stats.Vmsys.faults - rescan_start_faults in
  (faults_before, rescan_faults, stats, Simclock.now clock)

let () =
  let _, rescan_lru, stats_lru, time_lru = run_trace ~with_graft:false in
  let _, rescan_graft, stats_graft, time_graft = run_trace ~with_graft:true in
  Printf.printf "TPC-B subtree scan under memory pressure (%d frames)\n\n"
    nframes;
  Printf.printf "%-28s %12s %12s\n" "" "pure LRU" "hot-list graft";
  Printf.printf "%-28s %12d %12d\n" "rescan faults (of 129 pages)" rescan_lru
    rescan_graft;
  Printf.printf "%-28s %12d %12d\n" "total faults" stats_lru.Vmsys.faults
    stats_graft.Vmsys.faults;
  Printf.printf "%-28s %12s %12s\n" "simulated I/O time"
    (Graft_util.Timer.pp_seconds time_lru)
    (Graft_util.Timer.pp_seconds time_graft);
  Printf.printf "%-28s %12s %12d\n" "graft overrides" "-"
    stats_graft.Vmsys.hook_overrides;
  Printf.printf "%-28s %12s %12d\n" "invalid proposals" "-"
    stats_graft.Vmsys.hook_invalid;
  let saved = time_lru -. time_graft in
  Printf.printf "\nThe graft saved %s of simulated I/O (%d avoided faults).\n"
    (Graft_util.Timer.pp_seconds saved)
    (stats_lru.Vmsys.faults - stats_graft.Vmsys.faults);
  if rescan_graft < rescan_lru then
    print_endline "Hot pages stayed resident, as the paper's model predicts."
