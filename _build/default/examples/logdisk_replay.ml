(* The paper's Black Box graft (section 3.3): a Logical Disk layer that
   turns random writes into sequential segment writes. The mapping
   bookkeeping runs as a graft; the kernel engine batches, charges the
   1995 Solaris disk model for both layouts, and shadow-verifies every
   mapping the graft reports.

   Run with: dune exec examples/logdisk_replay.exe *)

open Graft_kernel
open Graft_core

let nblocks = 16384
let writes = 8192

let () =
  let rng = Graft_util.Prng.create 0x1D15CL in
  let gen = Graft_workload.Skew.eighty_twenty rng ~n:nblocks in
  let workload = Graft_workload.Skew.workload gen writes in
  let config = { Logdisk.nblocks; segment_blocks = 16 } in
  Printf.printf
    "replaying %d skewed writes (80%%/20%%) over a %d-block disk\n\n" writes
    nblocks;
  Printf.printf "%-22s %12s %12s %12s %8s\n" "technology" "bookkeeping"
    "LSD I/O" "in-place I/O" "correct";
  List.iter
    (fun tech ->
      let manager = Manager.create () in
      ignore
        (Manager.register manager ~name:"lsd" ~tech
           ~structure:Taxonomy.Black_box ~motivation:Taxonomy.Performance ());
      let policy =
        Manager.attach_logdisk manager ~graft_name:"lsd"
          (Runners.logdisk_policy tech ~nblocks)
      in
      let elapsed, result =
        Graft_util.Timer.time_it (fun () -> Logdisk.run config policy workload)
      in
      Printf.printf "%-22s %12s %12s %12s %8s\n" (Technology.name tech)
        (Graft_util.Timer.pp_seconds elapsed)
        (Graft_util.Timer.pp_seconds result.Logdisk.lsd_io_s)
        (Graft_util.Timer.pp_seconds result.Logdisk.inplace_io_s)
        (if result.Logdisk.mapping_errors = 0 then "yes" else "NO"))
    [
      Technology.Unsafe_c; Technology.Safe_lang; Technology.Sfi_write_jump;
      Technology.Bytecode_vm; Technology.Ast_interp;
    ];
  print_endline
    "\nBatching into 64KB segments beats in-place writes by an order of\n\
     magnitude on a seek-bound disk; even interpreted bookkeeping is\n\
     cheap next to the saved seeks (the paper's Table 6 conclusion)."
