examples/db_datablade.ml: Array Fault Gel Graft_gel Graft_mem Graft_stackvm Graft_util Link Memory Printf
