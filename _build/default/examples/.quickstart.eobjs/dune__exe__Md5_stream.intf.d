examples/md5_stream.mli:
