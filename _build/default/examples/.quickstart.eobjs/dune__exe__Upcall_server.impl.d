examples/upcall_server.ml: Array Diskmodel Graft_core Graft_kernel Graft_util Graft_workload List Manager Printf Runners Simclock Taxonomy Technology Tpcb Upcall Vmsys
