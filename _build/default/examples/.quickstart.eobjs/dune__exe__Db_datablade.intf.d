examples/db_datablade.mli:
