examples/quickstart.mli:
