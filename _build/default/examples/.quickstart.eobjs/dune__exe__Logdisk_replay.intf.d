examples/logdisk_replay.mli:
