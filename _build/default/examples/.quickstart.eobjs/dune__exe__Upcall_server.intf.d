examples/upcall_server.mli:
