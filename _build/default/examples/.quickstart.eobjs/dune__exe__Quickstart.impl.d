examples/quickstart.ml: Fault Gel Graft_gel Graft_mem Graft_regvm Graft_stackvm Interp Link Memory Printf
