examples/md5_stream.ml: Bytes Diskmodel Graft_core Graft_kernel Graft_md5 Graft_util Graft_workload List Manager Printf Runners Streams Taxonomy Technology
