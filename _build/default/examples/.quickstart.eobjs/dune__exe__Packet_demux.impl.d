examples/packet_demux.ml: Graft_core Graft_kernel Graft_util List Netpkt Printf Queue Runners Technology
