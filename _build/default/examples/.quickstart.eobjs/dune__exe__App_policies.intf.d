examples/app_policies.mli:
