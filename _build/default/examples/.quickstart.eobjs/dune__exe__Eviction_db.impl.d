examples/eviction_db.ml: Array Diskmodel Graft_core Graft_kernel Graft_util Graft_workload Manager Printf Runners Simclock Taxonomy Technology Tpcb Vmsys
