examples/logdisk_replay.ml: Graft_core Graft_kernel Graft_util Graft_workload List Logdisk Manager Printf Runners Taxonomy Technology
