examples/app_policies.ml: Array Bufcache Graft_kernel Graft_util Printf Sched Simclock
