examples/packet_demux.mli:
