examples/eviction_db.mli:
