(* Packet demultiplexing (paper section 2): filters are the original
   domain-specific interpreted kernel extension. The kernel delivers a
   traffic mix to endpoints whose filters are written in different
   technologies — including the BPF-like specialized VM, which is fast
   and safe by construction but cannot express any other graft.

   Run with: dune exec examples/packet_demux.exe *)

open Graft_kernel
open Graft_core

let () =
  let rng = Graft_util.Prng.create 0xDEC0DEL in
  let traffic = Netpkt.random_traffic rng ~count:20_000 in
  (* Three endpoints, three technologies: a DNS sniffer on the
     specialized VM, a web listener on the bytecode VM, and a
     catch-all UDP logger in the safe compiled regime. *)
  let dns =
    Netpkt.endpoint ~name:"dns (pf-vm)"
      (Runners.packet_filter Technology.Specialized_vm
         ~protocol:Netpkt.proto_udp ~port:53)
  in
  let web =
    Netpkt.endpoint ~name:"web (bytecode-vm)"
      (Runners.packet_filter Technology.Bytecode_vm
         ~protocol:Netpkt.proto_tcp ~port:80)
  in
  let ntp =
    Netpkt.endpoint ~name:"ntp (safe-lang)"
      (Runners.packet_filter Technology.Safe_lang ~protocol:Netpkt.proto_udp
         ~port:123)
  in
  let d = Netpkt.demux [ dns; web; ntp ] in
  let elapsed, () = Graft_util.Timer.time_it (fun () -> Netpkt.deliver_all d traffic) in
  Printf.printf "delivered %d packets through 3 filters in %s (%.0f kpps)\n\n"
    d.Netpkt.received
    (Graft_util.Timer.pp_seconds elapsed)
    (float_of_int d.Netpkt.received /. elapsed /. 1000.0);
  List.iter
    (fun ep ->
      Printf.printf "  %-20s %6d packets\n" ep.Netpkt.ep_name
        (Queue.length ep.Netpkt.queue))
    d.Netpkt.endpoints;
  Printf.printf "  %-20s %6d packets\n" "(no endpoint)" d.Netpkt.dropped;
  (* Every endpoint agrees with a native reference predicate. *)
  let check ep ~protocol ~port =
    Queue.iter
      (fun p ->
        assert (Netpkt.protocol p = protocol && Netpkt.dst_port p = port))
      ep.Netpkt.queue
  in
  check dns ~protocol:Netpkt.proto_udp ~port:53;
  check web ~protocol:Netpkt.proto_tcp ~port:80;
  check ntp ~protocol:Netpkt.proto_udp ~port:123;
  print_endline "\nall deliveries verified against the header fields"
