(* Extension technology outside the kernel (paper section 2): database
   servers let clients load query-specific code — Illustra DataBlades
   ran unprotected, Thor used a typesafe language. Here a tiny query
   engine evaluates a user-supplied predicate ("UDF") over a table,
   with the UDF running as a graft: once in unsafe native code
   (Illustra's model) and once in the safe bytecode VM (Thor's model).

   The safe UDF also demonstrates why Thor bothered: a buggy predicate
   faults and the server survives, returning an error for that query
   only.

   Run with: dune exec examples/db_datablade.exe *)

open Graft_gel
open Graft_mem

(* The table: orders (price, quantity), column-major. *)
let nrows = 200_000

let price, qty =
  let rng = Graft_util.Prng.create 0xDBDBL in
  ( Array.init nrows (fun _ -> 1 + Graft_util.Prng.int rng 1000),
    Array.init nrows (fun _ -> 1 + Graft_util.Prng.int rng 50) )

(* The query: count rows where price * qty > 20000 and price odd. *)

let native_udf p q = (p * q > 20_000) && p land 1 = 1

let udf_source =
  {|
shared array row[2];

fn keep() : int {
  var p = row[0];
  var q = row[1];
  if (p * q > 20000 && p % 2 == 1) { return 1; }
  return 0;
}

fn buggy() : int {
  return row[99];   // reads past the row window
}
|}

let () =
  (* Native (Illustra-style, unprotected) scan. *)
  let t_native, native_count =
    Graft_util.Timer.time_it (fun () ->
        let c = ref 0 in
        for i = 0 to nrows - 1 do
          if native_udf price.(i) qty.(i) then incr c
        done;
        !c)
  in
  (* Safe bytecode UDF (Thor-style): the server maps the current row
     into the graft's window and upcalls per row. *)
  let prog = Gel.compile_exn udf_source in
  let mem = Memory.create 1024 in
  let row = Memory.alloc mem ~name:"row" ~len:2 ~perm:Memory.perm_ro in
  let image =
    match Link.link prog ~mem ~shared:[ ("row", row) ] ~hosts:[] with
    | Ok image -> image
    | Error m -> failwith m
  in
  let vm = Graft_stackvm.Stackvm.load_exn image in
  let session = Graft_stackvm.Vm.create_session vm in
  let cells = Memory.cells mem in
  let t_vm, vm_count =
    Graft_util.Timer.time_it (fun () ->
        let c = ref 0 in
        for i = 0 to nrows - 1 do
          cells.(row.Memory.base) <- price.(i);
          cells.(row.Memory.base + 1) <- qty.(i);
          match
            Graft_stackvm.Vm.run_session session ~entry:"keep" ~args:[||]
              ~fuel:10_000
          with
          | Ok 1 -> incr c
          | Ok _ -> ()
          | Error _ -> failwith "udf faulted"
        done;
        !c)
  in
  Printf.printf "query: count(*) where price*qty > 20000 and price odd  (%d rows)\n\n" nrows;
  Printf.printf "  %-28s count=%d in %s\n" "native UDF (DataBlade-style)"
    native_count
    (Graft_util.Timer.pp_seconds t_native);
  Printf.printf "  %-28s count=%d in %s (%.0fx)\n" "bytecode UDF (Thor-style)"
    vm_count
    (Graft_util.Timer.pp_seconds t_vm)
    (t_vm /. t_native);
  assert (native_count = vm_count);
  (* The buggy UDF faults; the server survives and keeps answering. *)
  (match
     Graft_stackvm.Vm.run_session session ~entry:"buggy" ~args:[||] ~fuel:10_000
   with
  | Error (`Fault f) ->
      Printf.printf "\nbuggy UDF contained: %s\n" (Fault.to_string f)
  | _ -> failwith "buggy UDF should fault");
  (match
     Graft_stackvm.Vm.run_session session ~entry:"keep" ~args:[||] ~fuel:10_000
   with
  | Ok _ -> print_endline "server still answering queries afterwards"
  | Error _ -> failwith "server should survive");
  print_endline
    "\nIllustra ran DataBlades unprotected ('does not currently protect\n\
     itself from misbehaved DataBlade code'); Thor paid interpretation\n\
     for safety. Same trade as in the kernel."
