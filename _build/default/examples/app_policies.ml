(* Application-controlled kernel policies beyond page eviction: the
   buffer cache (Cao et al. [CAO94], the work that motivated the
   paper's Policy grafts) and the process scheduler (paper section
   3.1's client-server scenario).

   Two lessons the paper draws show up directly:
   - choosing among precompiled policies (Cao's model) already wins
     when the workload is known (MRU vs LRU on a cyclic scan), but
   - a grafted policy expresses things no fixed menu anticipates
     (protect exactly my hot blocks; never run the server without work).

   Run with: dune exec examples/app_policies.exe *)

open Graft_kernel

let pp = Graft_util.Timer.pp_seconds

let bufcache_demo () =
  print_endline "== buffer cache: cyclic scan of 12 blocks through 8 buffers ==";
  let scan policy_name policy =
    let clock = Simclock.create () in
    let c = Bufcache.create ~clock ~nbufs:8 () in
    Bufcache.set_policy c policy;
    for _ = 1 to 20 do
      for block = 0 to 11 do
        ignore (Bufcache.read c block)
      done
    done;
    let s = Bufcache.stats c in
    Printf.printf "  %-28s %4d hits %4d misses  io %s\n" policy_name
      s.Bufcache.hits s.Bufcache.misses
      (pp (Simclock.now clock))
  in
  scan "LRU (kernel default)" (Bufcache.Builtin Bufcache.Lru);
  scan "MRU (Cao-style selection)" (Bufcache.Builtin Bufcache.Mru);
  (* A grafted policy: the application knows blocks 0-3 are its index
     pages and protects exactly those. *)
  scan "grafted (protect 0-3)"
    (Bufcache.Grafted
       (fun ~candidate ~resident ->
         if candidate > 3 then candidate
         else
           match Array.find_opt (fun b -> b > 3) resident with
           | Some b -> b
           | None -> candidate))

let sched_demo () =
  print_endline "\n== scheduler: client-server mix (server 0.2s, clients 0.5s each) ==";
  let run name hook =
    let clock = Simclock.create () in
    let s =
      Sched.create ~clock ~quantum_s:0.01
        [ ("server", 0.2); ("client1", 0.5); ("client2", 0.5) ]
    in
    Sched.set_hook s hook;
    ignore (Sched.run s);
    let server = Sched.proc s 0 in
    Printf.printf "  %-28s server waited %s over %d slices\n" name
      (pp server.Sched.wait_s) server.Sched.scheduled
  in
  run "round-robin (default)" None;
  run "grafted (server first)"
    (Some
       (fun ~candidate ~runnable ->
         if Array.exists (fun pid -> pid = 0) runnable then 0 else candidate))

let () =
  bufcache_demo ();
  sched_demo ();
  print_endline
    "\nBoth hooks validate proposals: a graft can only pick resident\n\
     blocks / runnable processes, so a buggy policy degrades to the\n\
     kernel default instead of corrupting it."
