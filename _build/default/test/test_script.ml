(* Tests for graft_script: the Tcl-like source interpreter. *)

open Graft_mem
open Graft_script

let mk ?(fuel = 10_000_000) ?(mem_size = 256) () =
  let mem = Memory.create mem_size in
  (mem, Script.create ~fuel mem)

let eval_ok ?(fuel = 10_000_000) src =
  let _, t = mk ~fuel () in
  match Script.eval t src with
  | Ok v -> v
  | Error f -> Alcotest.failf "script fault: %s" (Fault.to_string f)

let eval_fault ?(fuel = 10_000_000) src =
  let _, t = mk ~fuel () in
  match Script.eval t src with
  | Ok v -> Alcotest.failf "expected fault, got %S" v
  | Error f -> f

let check_str = Alcotest.(check string)

(* ---------- expr ---------- *)

let test_expr_basic () =
  check_str "add" "7" (eval_ok "expr {1 + 2 * 3}");
  check_str "paren" "9" (eval_ok "expr {(1 + 2) * 3}");
  check_str "hex" "255" (eval_ok "expr {0xFF}");
  check_str "mod" "2" (eval_ok "expr {17 % 5}");
  check_str "shift" "32" (eval_ok "expr {1 << 5}");
  check_str "cmp" "1" (eval_ok "expr {3 < 5}");
  check_str "logic" "1" (eval_ok "expr {1 && (0 || 1)}");
  check_str "unary" "-5" (eval_ok "expr {-5}");
  check_str "not" "1" (eval_ok "expr {!0}");
  check_str "bnot" "-1" (eval_ok "expr {~0}")

let test_expr_word_masking () =
  (* The MD5 idiom: 32-bit wrap via explicit masking. *)
  check_str "mask add" "0"
    (eval_ok "expr {(0xFFFFFFFF + 1) & 0xFFFFFFFF}");
  check_str "rotl" (string_of_int 0x80000000)
    (eval_ok "expr {((1 << 31) | (1 >> 1)) & 0xFFFFFFFF}")

let test_expr_div_zero () =
  match eval_fault "expr {1 / 0}" with
  | Fault.Division_by_zero -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_expr_malformed () =
  match eval_fault "expr {1 +}" with
  | Fault.Type_error _ -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

(* ---------- variables and substitution ---------- *)

let test_set_get () =
  check_str "set" "42" (eval_ok "set x 42\nset x");
  check_str "subst" "43" (eval_ok "set x 42\nexpr {$x + 1}")

let test_unset_variable_fault () =
  match eval_fault "set y $nosuch" with
  | Fault.Type_error _ -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_incr () =
  check_str "incr" "6" (eval_ok "set i 5\nincr i");
  check_str "incr by" "15" (eval_ok "set i 5\nincr i 10")

let test_command_substitution () =
  check_str "cmd subst" "10" (eval_ok "set x [expr {4 + 6}]\nset x")

let test_quotes_substitute_braces_dont () =
  check_str "quotes" "v=7" (eval_ok "set v 7\nset out \"v=$v\"\nset out");
  check_str "braces" "v=$v" (eval_ok "set v 7\nset out {v=$v}\nset out")

let test_semicolon_separator () =
  check_str "semis" "3" (eval_ok "set a 1; set b 2; expr {$a + $b}")

let test_comments_skipped () =
  check_str "comment" "5" (eval_ok "# a comment\nset x 5\nset x")

(* ---------- control flow ---------- *)

let test_if_else () =
  check_str "then" "yes" (eval_ok "if {1 < 2} { set r yes } else { set r no }\nset r");
  check_str "else" "no" (eval_ok "if {1 > 2} { set r yes } else { set r no }\nset r");
  check_str "elseif" "mid"
    (eval_ok
       "set x 5\n\
        if {$x < 3} { set r low } elseif {$x < 10} { set r mid } else { set r \
        hi }\n\
        set r")

let test_while_loop () =
  check_str "sum 1..10" "55"
    (eval_ok
       "set i 1\nset sum 0\nwhile {$i <= 10} { set sum [expr {$sum + $i}]; incr i }\nset sum")

let test_for_loop () =
  check_str "for" "45"
    (eval_ok
       "set sum 0\n\
        for {set i 0} {$i < 10} {incr i} { set sum [expr {$sum + $i}] }\n\
        set sum")

let test_break_continue () =
  check_str "break/continue" "25"
    (eval_ok
       "set sum 0\n\
        for {set i 0} {$i < 100} {incr i} {\n\
        if {$i % 2 == 0} { continue }\n\
        if {$i > 10} { break }\n\
        set sum [expr {$sum + $i}]\n\
        }\n\
        set sum")

let test_nested_loops () =
  check_str "nested" "12"
    (eval_ok
       "set count 0\n\
        for {set i 0} {$i < 3} {incr i} {\n\
        set j 0\n\
        while {1} { incr j; if {$j == 4} { break } }\n\
        set count [expr {$count + $j}]\n\
        }\n\
        set count")

(* ---------- procs ---------- *)

let test_proc_factorial () =
  check_str "fact" "3628800"
    (eval_ok
       "proc fact {n} {\n\
        if {$n <= 1} { return 1 }\n\
        return [expr {$n * [fact [expr {$n - 1}]]}]\n\
        }\n\
        fact 10")

let test_proc_fib () =
  check_str "fib" "6765"
    (eval_ok
       "proc fib {n} {\n\
        set a 0\nset b 1\n\
        for {set i 0} {$i < $n} {incr i} {\n\
        set t [expr {$a + $b}]\nset a $b\nset b $t\n\
        }\n\
        return $a\n\
        }\n\
        fib 20")

let test_proc_wrong_args () =
  match eval_fault "proc f {a b} { return $a }\nf 1" with
  | Fault.Type_error _ -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_proc_locals_isolated () =
  check_str "locals" "outer"
    (eval_ok
       "set x outer\nproc f {} { set x inner; return $x }\nf\nset x")

let test_global_links () =
  check_str "global" "7"
    (eval_ok
       "set g 0\nproc bump {} { global g; set g [expr {$g + 7}] }\nbump\nset g")

let test_call_api () =
  let _, t = mk () in
  (match Script.eval t "proc add3 {a b c} { return [expr {$a + $b + $c}] }" with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "define: %s" (Fault.to_string f));
  match Script.call t "add3" [ "1"; "2"; "3" ] with
  | Ok v -> check_str "call" "6" v
  | Error f -> Alcotest.failf "call: %s" (Fault.to_string f)

let test_deep_recursion_fault () =
  match eval_fault "proc f {n} { return [f [expr {$n + 1}]] }\nf 0" with
  | Fault.Stack_overflow -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

(* ---------- kernel memory access ---------- *)

let test_kload_kstore () =
  let mem, t = mk () in
  let r = Memory.alloc mem ~name:"buf" ~len:8 ~perm:Memory.perm_rw in
  Script.bind_array t ~name:"buf" r ~writable:true;
  (match Script.eval t "kstore buf 3 77\nkload buf 3" with
  | Ok v -> check_str "roundtrip" "77" v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f));
  Alcotest.(check int) "in memory" 77 (Memory.cells mem).(r.Memory.base + 3)

let test_kload_bounds () =
  let mem, t = mk () in
  let r = Memory.alloc mem ~name:"buf" ~len:8 ~perm:Memory.perm_rw in
  Script.bind_array t ~name:"buf" r ~writable:true;
  match Script.eval t "kload buf 99" with
  | Error (Fault.Out_of_bounds _) -> ()
  | Ok v -> Alcotest.failf "expected fault, got %S" v
  | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_kstore_readonly () =
  let mem, t = mk () in
  let r = Memory.alloc mem ~name:"buf" ~len:8 ~perm:Memory.perm_ro in
  Script.bind_array t ~name:"buf" r ~writable:false;
  match Script.eval t "kstore buf 0 1" with
  | Error (Fault.Protection _) -> ()
  | Ok v -> Alcotest.failf "expected fault, got %S" v
  | Error f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_bound_command () =
  let _, t = mk () in
  Script.bind_command t ~name:"host_double" (fun _t args ->
      match args with
      | [ x ] -> string_of_int (2 * int_of_string x)
      | _ -> "0");
  match Script.eval t "host_double 21" with
  | Ok v -> check_str "bound" "42" v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

(* ---------- safety ---------- *)

let test_fuel_exhaustion () =
  match eval_fault ~fuel:2000 "while {1} { set x 1 }" with
  | Fault.Fuel_exhausted -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_unknown_command () =
  match eval_fault "frobnicate 1 2 3" with
  | Fault.Type_error _ -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_interp_survives_fault () =
  let _, t = mk () in
  (match Script.eval t "expr {1 / 0}" with
  | Error Fault.Division_by_zero -> ()
  | _ -> Alcotest.fail "expected fault");
  match Script.eval t "expr {40 + 2}" with
  | Ok v -> check_str "survives" "42" v
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

(* ---------- syntax edges ---------- *)

let test_nested_brackets () =
  check_str "nested" "11" (eval_ok "expr {[expr {[expr {2 + 3}] * 2}] + 1}")

let test_brackets_in_braces_literal () =
  (* Braces suppress command substitution at word-split time... *)
  check_str "literal body deferred" "ran"
    (eval_ok "proc f {} { return ran }
set out {[f]}
expr {1}
set r [f]
set r")

let test_multiline_braced_body () =
  check_str "multiline" "6"
    (eval_ok "proc sum3 {a b c} {
  set t [expr {$a + $b}]
  return [expr {$t + $c}]
}
sum3 1 2 3")

let test_escapes_in_quotes () =
  check_str "escaped dollar" "$x" (eval_ok "set r \"\\$x\"\nset r");
  check_str "tab escape" "a\tb" (eval_ok "set r \"a\\tb\"\nset r")

let test_underscore_variables () =
  check_str "underscore var" "9" (eval_ok "set a_1 9\nset a_1")

let test_empty_script_and_blank_lines () =
  check_str "empty" "" (eval_ok "");
  check_str "blanks" "5" (eval_ok "

;;
set x 5

")

let test_while_zero_iterations () =
  check_str "no iterations" "0" (eval_ok "set n 0
while {$n > 0} { incr n }
set n")

let test_deeply_nested_control () =
  check_str "nested ifs" "8"
    (eval_ok
       "set x 0
        for {set i 0} {$i < 2} {incr i} {
        for {set j 0} {$j < 2} {incr j} {
        if {$i == $j} { set x [expr {$x + 3}] } else { set x [expr {$x + 1}] }
        }
        }
        set x")

let test_proc_redefinition () =
  check_str "latest wins" "2"
    (eval_ok "proc f {} { return 1 }
proc f {} { return 2 }
f")

let test_negative_numbers_roundtrip () =
  check_str "negative" "-15" (eval_ok "set x -5
expr {$x * 3}")

(* ---------- differential vs OCaml ---------- *)

let collatz_script =
  "proc collatz {n} {\n\
   set steps 0\n\
   while {$n != 1 && $steps < 1000} {\n\
   if {$n % 2 == 0} { set n [expr {$n / 2}] } else { set n [expr {3 * $n + \
   1}] }\n\
   incr steps\n\
   }\n\
   return $steps\n\
   }"

let collatz_ocaml n =
  let rec go n steps =
    if n = 1 || steps >= 1000 then steps
    else if n mod 2 = 0 then go (n / 2) (steps + 1)
    else go ((3 * n) + 1) (steps + 1)
  in
  go n 0

let test_collatz_differential () =
  let _, t = mk () in
  (match Script.eval t collatz_script with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "define: %s" (Fault.to_string f));
  let r = Graft_util.Prng.create 777L in
  for _ = 1 to 10 do
    let n = 1 + Graft_util.Prng.int r 10000 in
    match Script.call t "collatz" [ string_of_int n ] with
    | Ok v -> Alcotest.(check int) "collatz" (collatz_ocaml n) (int_of_string v)
    | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  done

let prop_expr_matches_ocaml =
  QCheck.Test.make ~name:"script expr matches OCaml" ~count:300
    QCheck.(triple (int_range 0 8) (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (opi, a, b) ->
      let ops =
        [| ("+", ( + )); ("-", ( - )); ("*", ( * ));
           ("/", (fun a b -> if b = 0 then 0 else a / b));
           ("%", (fun a b -> if b = 0 then 0 else a mod b));
           ("&", ( land )); ("|", ( lor )); ("^", ( lxor ));
           ("<", (fun a b -> if a < b then 1 else 0));
        |]
      in
      let name, f = ops.(opi) in
      if (name = "/" || name = "%") && b = 0 then true
      else
        let src = Printf.sprintf "expr {%d %s %d}" a name b in
        eval_ok src = string_of_int (f a b))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_script"
    [
      ( "expr",
        [
          Alcotest.test_case "basics" `Quick test_expr_basic;
          Alcotest.test_case "word masking" `Quick test_expr_word_masking;
          Alcotest.test_case "div by zero" `Quick test_expr_div_zero;
          Alcotest.test_case "malformed" `Quick test_expr_malformed;
        ] );
      ( "variables",
        [
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "unset var" `Quick test_unset_variable_fault;
          Alcotest.test_case "incr" `Quick test_incr;
          Alcotest.test_case "command substitution" `Quick test_command_substitution;
          Alcotest.test_case "quotes vs braces" `Quick test_quotes_substitute_braces_dont;
          Alcotest.test_case "semicolons" `Quick test_semicolon_separator;
          Alcotest.test_case "comments" `Quick test_comments_skipped;
        ] );
      ( "control",
        [
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "for" `Quick test_for_loop;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
        ] );
      ( "procs",
        [
          Alcotest.test_case "factorial" `Quick test_proc_factorial;
          Alcotest.test_case "fibonacci" `Quick test_proc_fib;
          Alcotest.test_case "wrong args" `Quick test_proc_wrong_args;
          Alcotest.test_case "locals isolated" `Quick test_proc_locals_isolated;
          Alcotest.test_case "global links" `Quick test_global_links;
          Alcotest.test_case "call api" `Quick test_call_api;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion_fault;
        ] );
      ( "memory",
        [
          Alcotest.test_case "kload/kstore" `Quick test_kload_kstore;
          Alcotest.test_case "bounds" `Quick test_kload_bounds;
          Alcotest.test_case "read-only" `Quick test_kstore_readonly;
          Alcotest.test_case "bound command" `Quick test_bound_command;
        ] );
      ( "safety",
        [
          Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
          Alcotest.test_case "unknown command" `Quick test_unknown_command;
          Alcotest.test_case "survives fault" `Quick test_interp_survives_fault;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "nested brackets" `Quick test_nested_brackets;
          Alcotest.test_case "braces literal" `Quick test_brackets_in_braces_literal;
          Alcotest.test_case "multiline body" `Quick test_multiline_braced_body;
          Alcotest.test_case "escapes" `Quick test_escapes_in_quotes;
          Alcotest.test_case "underscore vars" `Quick test_underscore_variables;
          Alcotest.test_case "empty/blank" `Quick test_empty_script_and_blank_lines;
          Alcotest.test_case "while zero" `Quick test_while_zero_iterations;
          Alcotest.test_case "nested control" `Quick test_deeply_nested_control;
          Alcotest.test_case "proc redefinition" `Quick test_proc_redefinition;
          Alcotest.test_case "negatives" `Quick test_negative_numbers_roundtrip;
        ] );
      ( "differential",
        [ Alcotest.test_case "collatz" `Quick test_collatz_differential ]
        @ qc [ prop_expr_matches_ocaml ] );
    ]
