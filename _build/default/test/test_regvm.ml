(* Tests for graft_regvm: compiler, SFI instrumentation, linear-time
   verifier, machine, and sandbox containment. *)

open Graft_gel
open Graft_mem
open Graft_regvm

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let compile_ok src =
  match Gel.compile src with
  | Ok prog -> prog
  | Error e -> Alcotest.failf "compile error: %s" (Srcloc.to_string e)

(* Link into a fresh power-of-two memory so the whole memory can be the
   sandbox segment. *)
let image_pow2 ?(size = 4096) ?hosts src =
  let mem = Memory.create size in
  match
    Link.link (compile_ok src) ~mem ~shared:[]
      ~hosts:(Option.value hosts ~default:[])
  with
  | Ok image -> image
  | Error msg -> Alcotest.failf "link error: %s" msg

let run ?(protection = Program.Write_jump) ?(entry = "main") ?(args = [||])
    ?(fuel = 10_000_000) ?hosts src =
  let image = image_pow2 ?hosts src in
  let p = Regvm.load_exn ~protection image in
  match Machine.run p ~entry ~args ~fuel with
  | Ok o -> o.Machine.value
  | Error (`Fault f) -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Error (`Bad_entry m) -> Alcotest.failf "bad entry: %s" m

let run_fault ?(protection = Program.Write_jump) ?(entry = "main")
    ?(args = [||]) ?(fuel = 10_000_000) src =
  let image = image_pow2 src in
  let p = Regvm.load_exn ~protection image in
  match Machine.run p ~entry ~args ~fuel with
  | Ok o -> Alcotest.failf "expected fault, got %d" o.Machine.value
  | Error (`Fault f) -> f
  | Error (`Bad_entry m) -> Alcotest.failf "bad entry: %s" m

let check_int = Alcotest.(check int)

(* ---------- execution parity ---------- *)

let test_arith () = check_int "arith" 7 (run "fn main() : int { return 1 + 2 * 3; }")

let test_factorial () =
  check_int "10!" 3628800
    (run ~entry:"fact" ~args:[| 10 |]
       "fn fact(n : int) : int { if (n <= 1) { return 1; } return n * fact(n - 1); }")

let test_fib () =
  check_int "fib 20" 6765
    (run ~entry:"fib" ~args:[| 20 |]
       "fn fib(n : int) : int {\n\
        var a = 0; var b = 1;\n\
        for (var i = 0; i < n; i = i + 1) { var t = a + b; a = b; b = t; }\n\
        return a;\n\
        }")

let test_word_ops () =
  check_int "word wrap" 0
    (run "fn main() : int { var w : word = 0xFFFFFFFF; return int(w + 1); }");
  check_int "word rot" 0x80000000
    (run
       "fn main() : int { var x : word = 1; var n = 31;\n\
        return int((x << n) | (x >>> (32 - n))); }")

let test_arrays_and_globals () =
  check_int "arrays+globals" 163
    (run
       "var g : int = 100;\n\
        array a[3];\n\
        fn main() : int { a[0] = 10; a[1] = 20; a[2] = 30; g = g + 3;\n\
        return g + a[0] + a[1] + a[2]; }")

let test_array_initializer () =
  check_int "init" 0xef
    (run
       "array t[4] : word = { 0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476 };\n\
        fn main() : int { return int(t[1] >> 24); }")

let test_break_continue () =
  check_int "break/continue" 25
    (run
       "fn main() : int {\n\
        var sum = 0;\n\
        for (var i = 0; i < 100; i = i + 1) {\n\
        if (i % 2 == 0) { continue; }\n\
        if (i > 10) { break; }\n\
        sum = sum + i;\n\
        }\n\
        return sum;\n\
        }")

let test_short_circuit () =
  (* a[big] under SFI does not fault, it lands in the sandbox; use a
     global side effect to detect unwanted evaluation instead. *)
  check_int "sc and" 0
    (run
       "var hits : int = 0;\n\
        fn touch() : int { hits = hits + 1; return 1; }\n\
        fn main() : int { if (false && touch() == 1) { return 99; } return \
        hits; }");
  check_int "sc or" 0
    (run
       "var hits : int = 0;\n\
        fn touch() : int { hits = hits + 1; return 1; }\n\
        fn main() : int { if (true || touch() == 1) { return hits; } return \
        99; }")

let test_extern () =
  let hosts = [ { Link.hname = "twice"; hfn = (fun a -> 2 * a.(0)) } ] in
  check_int "extern" 14
    (run ~hosts
       "extern fn twice(int) : int;\nfn main() : int { return twice(7); }")

let test_all_protections_agree () =
  let src =
    "array a[16];\n\
     fn main(seed : int) : int {\n\
     for (var i = 0; i < 16; i = i + 1) { a[i] = seed * i + 3; }\n\
     var s = 0;\n\
     for (var i = 0; i < 16; i = i + 1) { s = s + a[i] * i; }\n\
     return s;\n\
     }"
  in
  let results =
    List.map
      (fun prot -> run ~protection:prot ~args:[| 17 |] src)
      [ Program.Unprotected; Program.Write_jump; Program.Full ]
  in
  match results with
  | [ a; b; c ] ->
      check_int "unprot = wj" a b;
      check_int "wj = full" b c
  | _ -> assert false

(* ---------- faults ---------- *)

let test_fault_div () =
  match run_fault ~args:[| 0 |] "fn main(a : int) : int { return 1 / a; }" with
  | Fault.Division_by_zero -> ()
  | f -> Alcotest.failf "wrong fault %s" (Fault.to_string f)

let test_fault_fuel () =
  match run_fault ~fuel:500 "fn main() : int { while (true) { } return 0; }" with
  | Fault.Fuel_exhausted -> ()
  | f -> Alcotest.failf "wrong fault %s" (Fault.to_string f)

let test_fault_recursion () =
  match
    run_fault ~entry:"f" ~args:[| 0 |] "fn f(n : int) : int { return f(n + 1); }"
  with
  | Fault.Stack_overflow -> ()
  | f -> Alcotest.failf "wrong fault %s" (Fault.to_string f)

let test_unprotected_wild_read_machine_fault () =
  (* With no SFI and no bounds checks, a wild access escapes the graft
     entirely and hits the machine's memory limit: the "kernel crash"
     the paper's unsafe-C technology risks. *)
  match
    run_fault ~protection:Program.Unprotected ~args:[| 1_000_000 |]
      "array a[4];\nfn main(i : int) : int { return a[i]; }"
  with
  | Fault.Out_of_bounds _ -> ()
  | f -> Alcotest.failf "wrong fault %s" (Fault.to_string f)

(* ---------- sandbox containment ---------- *)

(* Kernel memory at cells [1, 1024); graft segment [1024, 2048). *)
let containment_setup src =
  let mem = Memory.create 2048 in
  let kernel =
    Memory.alloc mem ~name:"kernel_data" ~len:1023 ~perm:Memory.perm_none
  in
  let sentinel = kernel.Memory.base + 500 in
  (Memory.cells mem).(sentinel) <- 0xBEEF;
  let image =
    match Link.link (compile_ok src) ~mem ~shared:[] ~hosts:[] with
    | Ok image -> image
    | Error msg -> Alcotest.failf "link: %s" msg
  in
  let segment = { Program.base = 1024; size = 1024 } in
  (mem, sentinel, image, segment)

let evil_store_src =
  (* a[i] with negative i reaches below the segment into kernel data. *)
  "array a[8];\nfn main(i : int) : int { a[i] = 66; return 0; }"

let test_unprotected_store_corrupts_kernel () =
  let mem, sentinel, image, segment = containment_setup evil_store_src in
  let p = Compile.compile image ~segment in
  let a_base = image.Link.arr_base.(0) in
  let evil_index = sentinel - a_base in
  (match Machine.run p ~entry:"main" ~args:[| evil_index |] ~fuel:10_000 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unprotected store should land in kernel memory");
  check_int "kernel cell corrupted" 66 (Memory.cells mem).(sentinel)

let test_sfi_store_confined () =
  let mem, sentinel, image, segment = containment_setup evil_store_src in
  let p = Compile.compile image ~segment in
  let p = Sfi.instrument p ~protection:Program.Write_jump in
  (match Verify.verify p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify: %s" m);
  let a_base = image.Link.arr_base.(0) in
  let evil_index = sentinel - a_base in
  (match Machine.run p ~entry:"main" ~args:[| evil_index |] ~fuel:10_000 with
  | Ok _ -> ()
  | Error (`Fault f) -> Alcotest.failf "sandboxed store faulted: %s" (Fault.to_string f)
  | Error (`Bad_entry m) -> Alcotest.fail m);
  check_int "kernel cell intact" 0xBEEF (Memory.cells mem).(sentinel);
  (* The masked write landed inside the segment. *)
  let seg_cells =
    Array.sub (Memory.cells mem) segment.Program.base segment.Program.size
  in
  Alcotest.(check bool) "write landed in segment" true
    (Array.exists (fun v -> v = 66) seg_cells)

let evil_read_src =
  "array a[8];\nfn main(i : int) : int { return a[i]; }"

let test_write_jump_does_not_stop_reads () =
  (* The Omniware beta the paper measured had no read protection; our
     Write_jump mode reproduces that: the evil read sees kernel data. *)
  let mem, sentinel, image, segment = containment_setup evil_read_src in
  ignore mem;
  let p = Compile.compile image ~segment in
  let p = Sfi.instrument p ~protection:Program.Write_jump in
  let a_base = image.Link.arr_base.(0) in
  let evil_index = sentinel - a_base in
  match Machine.run p ~entry:"main" ~args:[| evil_index |] ~fuel:10_000 with
  | Ok o -> check_int "kernel data leaked" 0xBEEF o.Machine.value
  | Error _ -> Alcotest.fail "read should succeed under write+jump"

let test_full_protection_confines_reads () =
  let mem, sentinel, image, segment = containment_setup evil_read_src in
  ignore (mem, sentinel);
  let p = Compile.compile image ~segment in
  let p = Sfi.instrument p ~protection:Program.Full in
  (match Verify.verify p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "verify: %s" m);
  let a_base = image.Link.arr_base.(0) in
  let evil_index = sentinel - a_base in
  match Machine.run p ~entry:"main" ~args:[| evil_index |] ~fuel:10_000 with
  | Ok o ->
      Alcotest.(check bool) "read confined to segment" true
        (o.Machine.value <> 0xBEEF)
  | Error (`Fault f) -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Error (`Bad_entry m) -> Alcotest.fail m

(* ---------- instrumentation overhead ---------- *)

let store_heavy_src =
  "array a[64];\n\
   fn main() : int {\n\
   for (var i = 0; i < 64; i = i + 1) { a[i] = i * 2; }\n\
   return a[63];\n\
   }"

let icount ~protection src =
  let image = image_pow2 src in
  let p = Regvm.load_exn ~protection image in
  match Machine.run p ~entry:"main" ~args:[||] ~fuel:10_000_000 with
  | Ok o -> o.Machine.instructions
  | Error _ -> Alcotest.fail "run failed"

let test_sfi_instruction_overhead () =
  let base = icount ~protection:Program.Unprotected store_heavy_src in
  let wj = icount ~protection:Program.Write_jump store_heavy_src in
  let full = icount ~protection:Program.Full store_heavy_src in
  Alcotest.(check bool) "wj > base" true (wj > base);
  Alcotest.(check bool) "full >= wj" true (full >= wj);
  (* 64 dynamic stores, 3 extra instructions each. *)
  check_int "wj overhead = 3 per store" (base + (3 * 64)) wj

let test_results_identical_across_protection () =
  check_int "unprot" 126 (run ~protection:Program.Unprotected store_heavy_src);
  check_int "wj" 126 (run ~protection:Program.Write_jump store_heavy_src);
  check_int "full" 126 (run ~protection:Program.Full store_heavy_src)

(* ---------- verifier ---------- *)

let expect_reject p fragment =
  match Verify.verify p with
  | Ok () -> Alcotest.fail "verifier accepted bad code"
  | Error msg ->
      if not (contains msg fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment

let instrumented src =
  let image = image_pow2 src in
  let p = Compile.compile image ~segment:(Sfi.segment_of_memory image.Link.mem) in
  Sfi.instrument p ~protection:Program.Write_jump

let test_verify_accepts_instrumented () =
  let p = instrumented store_heavy_src in
  match Verify.verify p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "rejected good code: %s" m

let test_verify_rejects_raw_store () =
  let p = instrumented store_heavy_src in
  (* Tamper: find a sandboxed store and replace it with a raw one, as a
     malicious compiler would. *)
  let code = Array.copy p.Program.code in
  let tampered = ref false in
  Array.iteri
    (fun i instr ->
      match instr with
      | Isa.St (rb, rs, _) when (not !tampered) && rb = Isa.reg_sandbox ->
          code.(i) <- Isa.St (Isa.reg_scratch, rs, 0);
          tampered := true
      | _ -> ())
    code;
  Alcotest.(check bool) "tampered" true !tampered;
  expect_reject { p with Program.code } "sandbox register"

let test_verify_rejects_wrong_mask () =
  let p = instrumented store_heavy_src in
  let code = Array.copy p.Program.code in
  let tampered = ref false in
  Array.iteri
    (fun i instr ->
      match instr with
      | Isa.Andi (rd, rs, _) when (not !tampered) && rd = Isa.reg_sandbox ->
          code.(i) <- Isa.Andi (rd, rs, 0xFFFFFF);
          tampered := true
      | _ -> ())
    code;
  Alcotest.(check bool) "tampered" true !tampered;
  expect_reject { p with Program.code } "wrong mask"

let test_verify_rejects_sandbox_reg_abuse () =
  let p = instrumented store_heavy_src in
  let code = Array.copy p.Program.code in
  (* Prepend is hard; overwrite the first instruction instead with a
     write to r1. *)
  code.(0) <- Isa.Movi (Isa.reg_sandbox, 7);
  expect_reject { p with Program.code } "non-masking write"

let test_verify_rejects_write_to_zero () =
  let p = instrumented store_heavy_src in
  let code = Array.copy p.Program.code in
  code.(0) <- Isa.Movi (Isa.reg_zero, 7);
  expect_reject { p with Program.code } "zero register"

let test_verify_rejects_branch_into_sequence () =
  let p = instrumented store_heavy_src in
  let code = Array.copy p.Program.code in
  (* Find a store through r1 and point a branch straight at it. *)
  let target = ref (-1) in
  Array.iteri
    (fun i instr ->
      match instr with
      | Isa.St (rb, _, _) when !target < 0 && rb = Isa.reg_sandbox ->
          target := i
      | _ -> ())
    code;
  Alcotest.(check bool) "found store" true (!target >= 0);
  code.(0) <- Isa.Br !target;
  expect_reject { p with Program.code } "masking sequence"

let test_verify_rejects_bad_branch_target () =
  let p = instrumented store_heavy_src in
  let code = Array.copy p.Program.code in
  code.(0) <- Isa.Br 100000;
  expect_reject { p with Program.code } "out of range"

let test_verify_rejects_call_arity () =
  let image = image_pow2 "fn f(a : int) : int { return a; }\nfn main() : int { return f(1); }" in
  let p = Compile.compile image ~segment:(Sfi.segment_of_memory image.Link.mem) in
  let code = Array.copy p.Program.code in
  let tampered = ref false in
  Array.iteri
    (fun i instr ->
      match instr with
      | Isa.Call { f; dst; argbase; nargs = _ } when not !tampered ->
          code.(i) <- Isa.Call { f; dst; argbase; nargs = 0 };
          tampered := true
      | _ -> ())
    code;
  Alcotest.(check bool) "tampered" true !tampered;
  expect_reject { p with Program.code } "args"

let test_load_rejects_tampered () =
  (* End-to-end: Regvm.load refuses a program whose memory is not a
     power of two (cannot build a mask). *)
  let mem = Memory.create 3000 in
  let image =
    match Link.link (compile_ok "fn main() : int { return 0; }") ~mem ~shared:[] ~hosts:[] with
    | Ok i -> i
    | Error m -> Alcotest.failf "link: %s" m
  in
  match Regvm.load image with
  | Error msg -> Alcotest.(check bool) "mentions power" true (contains msg "power")
  | Ok _ -> Alcotest.fail "should reject non-pow2 memory"

let test_register_exhaustion_rejected () =
  (* A pathologically deep expression exceeds the register file; the
     loader must refuse it cleanly (a real compiler would spill). *)
  (* Right-nested with constant left operands: each level holds one
     live temporary while the right subtree is evaluated. *)
  let rec build n = if n = 0 then "a" else Printf.sprintf "(1 + %s)" (build (n - 1)) in
  let src = Printf.sprintf "fn main(a : int) : int { return %s; }" (build 200) in
  let image = image_pow2 src in
  (match Regvm.load image with
  | Error msg -> Alcotest.(check bool) "mentions registers" true (contains msg "register")
  | Ok _ -> Alcotest.fail "should refuse");
  (* The stack VM handles the same program fine (1024-deep operand stack). *)
  let image2 = image_pow2 src in
  let p = Graft_stackvm.Stackvm.load_exn image2 in
  match Graft_stackvm.Vm.run p ~entry:"main" ~args:[| 1 |] ~fuel:100_000 with
  | Ok v -> Alcotest.(check int) "stackvm result" 201 v
  | Error _ -> Alcotest.fail "stackvm should run it"

(* ---------- disasm ---------- *)

let test_disasm () =
  let p = instrumented store_heavy_src in
  let s = Disasm.program p in
  Alcotest.(check bool) "shows masking" true (contains s "andi r1");
  Alcotest.(check bool) "shows protection" true (contains s "write+jump")

(* ---------- differential vs reference interpreter ---------- *)

let both ?(entry = "main") ?(args = [||]) ?(fuel = 50_000_000) src =
  let i1 = image_pow2 src in
  let r1 = Interp.run i1 ~entry ~args ~fuel in
  let i2 = image_pow2 src in
  let p = Regvm.load_exn ~protection:Program.Write_jump i2 in
  let r2 = Machine.run p ~entry ~args ~fuel in
  match (r1, r2) with
  | Ok a, Ok o -> if a <> o.Machine.value then Alcotest.failf "interp=%d regvm=%d" a o.Machine.value
  | Error (`Fault fa), Error (`Fault fb) ->
      ignore (fa, fb) (* same failure class not guaranteed without bounds checks *)
  | Ok a, Error (`Fault f) ->
      Alcotest.failf "interp=%d but regvm faulted: %s" a (Fault.to_string f)
  | Error (`Fault f), Ok o ->
      Alcotest.failf "interp faulted (%s) but regvm=%d" (Fault.to_string f)
        o.Machine.value
  | _ -> Alcotest.fail "bad entry"

let test_differential () =
  let r = Graft_util.Prng.create 0x5EC0DE5L in
  for _ = 1 to 20 do
    both
      ~args:[| 1 + Graft_util.Prng.int r 100000 |]
      "fn main(n : int) : int {\n\
       var steps = 0;\n\
       while (n != 1 && steps < 1000) {\n\
       if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }\n\
       steps = steps + 1;\n\
       }\n\
       return steps;\n\
       }";
    both
      ~args:[| Graft_util.Prng.int r 0x40000000; Graft_util.Prng.int r 0x40000000 |]
      "fn main(a : int, b : int) : int {\n\
       var x : word = word(a);\n\
       var y : word = word(b);\n\
       var acc : word = 0;\n\
       for (var i = 0; i < 16; i = i + 1) {\n\
       acc = (acc + x * y) ^ (x << (i & 31)) | (y >>> 3);\n\
       x = x + 0x9E3779B9;\n\
       y = y - x;\n\
       }\n\
       return int(acc);\n\
       }";
    both
      ~args:[| Graft_util.Prng.int r 3; Graft_util.Prng.int r 4 |]
      "fn ack(m : int, n : int) : int {\n\
       if (m == 0) { return n + 1; }\n\
       if (n == 0) { return ack(m - 1, 1); }\n\
       return ack(m - 1, ack(m, n - 1));\n\
       }\n\
       fn main(m : int, n : int) : int { return ack(m, n); }"
  done

let prop_differential =
  QCheck.Test.make ~name:"random inputs: regvm = interp" ~count:100
    QCheck.(pair (int_range 0 1000000) (int_range 0 1000000))
    (fun (a, b) ->
      let src =
        "array buf[32];\n\
         fn main(a : int, b : int) : int {\n\
         for (var i = 0; i < 32; i = i + 1) { buf[i] = (a * i) ^ (b >> (i & \
         7)); }\n\
         var s = 0;\n\
         for (var i = 0; i < 32; i = i + 1) { s = s + buf[i] * (i + 1); }\n\
         return s;\n\
         }"
      in
      let i1 = image_pow2 src in
      let r1 = Interp.run i1 ~entry:"main" ~args:[| a; b |] ~fuel:1_000_000 in
      let i2 = image_pow2 src in
      let p = Regvm.load_exn i2 in
      let r2 = Machine.run p ~entry:"main" ~args:[| a; b |] ~fuel:1_000_000 in
      match (r1, r2) with
      | Ok x, Ok o -> x = o.Machine.value
      | _ -> false)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_regvm"
    [
      ( "exec",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "fibonacci" `Quick test_fib;
          Alcotest.test_case "word ops" `Quick test_word_ops;
          Alcotest.test_case "arrays+globals" `Quick test_arrays_and_globals;
          Alcotest.test_case "array init" `Quick test_array_initializer;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "short-circuit" `Quick test_short_circuit;
          Alcotest.test_case "extern" `Quick test_extern;
          Alcotest.test_case "protections agree" `Quick test_all_protections_agree;
        ] );
      ( "faults",
        [
          Alcotest.test_case "div by zero" `Quick test_fault_div;
          Alcotest.test_case "fuel" `Quick test_fault_fuel;
          Alcotest.test_case "deep recursion" `Quick test_fault_recursion;
          Alcotest.test_case "wild read machine fault" `Quick
            test_unprotected_wild_read_machine_fault;
        ] );
      ( "containment",
        [
          Alcotest.test_case "unprotected corrupts kernel" `Quick
            test_unprotected_store_corrupts_kernel;
          Alcotest.test_case "sfi confines stores" `Quick test_sfi_store_confined;
          Alcotest.test_case "wj allows reads" `Quick
            test_write_jump_does_not_stop_reads;
          Alcotest.test_case "full confines reads" `Quick
            test_full_protection_confines_reads;
          Alcotest.test_case "instruction overhead" `Quick
            test_sfi_instruction_overhead;
          Alcotest.test_case "results identical" `Quick
            test_results_identical_across_protection;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts instrumented" `Quick test_verify_accepts_instrumented;
          Alcotest.test_case "rejects raw store" `Quick test_verify_rejects_raw_store;
          Alcotest.test_case "rejects wrong mask" `Quick test_verify_rejects_wrong_mask;
          Alcotest.test_case "rejects r1 abuse" `Quick test_verify_rejects_sandbox_reg_abuse;
          Alcotest.test_case "rejects write to r0" `Quick test_verify_rejects_write_to_zero;
          Alcotest.test_case "rejects branch into seq" `Quick
            test_verify_rejects_branch_into_sequence;
          Alcotest.test_case "rejects bad target" `Quick test_verify_rejects_bad_branch_target;
          Alcotest.test_case "rejects call arity" `Quick test_verify_rejects_call_arity;
          Alcotest.test_case "load rejects non-pow2" `Quick test_load_rejects_tampered;
        ] );
      ( "limits",
        [
          Alcotest.test_case "register exhaustion" `Quick
            test_register_exhaustion_rejected;
        ] );
      ("disasm", [ Alcotest.test_case "renders" `Quick test_disasm ]);
      ( "differential",
        [ Alcotest.test_case "fixed programs" `Quick test_differential ]
        @ qc [ prop_differential ] );
    ]
