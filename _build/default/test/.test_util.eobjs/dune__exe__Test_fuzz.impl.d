test/test_fuzz.ml: Alcotest Array Buffer Fault Gel Graft_gel Graft_mem Graft_regvm Graft_stackvm Graft_util Int64 Interp Link List Memory Printf Prng QCheck QCheck_alcotest Srcloc
