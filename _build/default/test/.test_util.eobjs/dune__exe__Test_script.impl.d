test/test_script.ml: Alcotest Array Fault Graft_mem Graft_script Graft_util List Memory Printf QCheck QCheck_alcotest Script
