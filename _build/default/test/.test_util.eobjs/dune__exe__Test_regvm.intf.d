test/test_regvm.mli:
