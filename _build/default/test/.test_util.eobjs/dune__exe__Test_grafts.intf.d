test/test_grafts.mli:
