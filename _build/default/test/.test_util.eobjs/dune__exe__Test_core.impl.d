test/test_core.ml: Alcotest Array Breakeven Buffer Bytes Char Float Graft_core Graft_kernel Graft_md5 Graft_mem Graft_regvm Graft_util List Manager Option Prng Runners String Taxonomy Technology
