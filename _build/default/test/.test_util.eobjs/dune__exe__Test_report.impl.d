test/test_report.ml: Alcotest Experiments Graft_core Graft_report List Paperdata String Technology
