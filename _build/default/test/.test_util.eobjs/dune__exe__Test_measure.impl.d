test/test_measure.ml: Alcotest Diskbench Faultbench Float Graft_measure Graft_util List Platform Signalbench Stats Upcallbench
