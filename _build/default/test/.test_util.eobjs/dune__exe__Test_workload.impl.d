test/test_workload.ml: Alcotest Array Bytes Filedata Graft_util Graft_workload List Prng QCheck QCheck_alcotest Skew Tpcb
