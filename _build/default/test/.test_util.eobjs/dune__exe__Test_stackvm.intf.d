test/test_stackvm.mli:
