test/test_gel.ml: Alcotest Array Fault Gel Graft_gel Graft_mem Interp Ir Lexer Link List Memory Pretty Printf QCheck QCheck_alcotest Result Srcloc String Token Wordops
