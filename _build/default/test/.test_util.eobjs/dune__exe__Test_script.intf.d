test/test_script.mli:
