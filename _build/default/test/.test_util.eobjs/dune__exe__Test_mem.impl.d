test/test_mem.ml: Alcotest Array Fault Graft_mem List Memory QCheck QCheck_alcotest
