test/test_gel.mli:
