test/test_md5.ml: Alcotest Bytes Char Gen Graft_md5 Graft_util List Md5 Printf Prng QCheck QCheck_alcotest String
