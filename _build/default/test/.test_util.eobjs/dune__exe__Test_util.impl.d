test/test_util.ml: Alcotest Array Asciiplot Bytes Float Fun Gen Graft_util List Prng QCheck QCheck_alcotest Stats String Tablefmt Timer
