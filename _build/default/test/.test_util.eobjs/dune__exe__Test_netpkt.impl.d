test/test_netpkt.ml: Alcotest Array Bytes Graft_core Graft_kernel Graft_util List Netpkt Pfvm Prng QCheck QCheck_alcotest Queue Runners Technology
