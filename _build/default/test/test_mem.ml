(* Tests for graft_mem: regions, permissions, faults, unsafe clamping. *)

open Graft_mem

let fault_of f =
  match f () with
  | exception Fault.Fault fault -> Some fault
  | _ -> None

let expect_fault msg pred f =
  match fault_of f with
  | Some fault when pred fault -> ()
  | Some fault -> Alcotest.failf "%s: wrong fault %s" msg (Fault.to_string fault)
  | None -> Alcotest.failf "%s: no fault raised" msg

let test_create_and_size () =
  let m = Memory.create 100 in
  Alcotest.(check int) "size" 100 (Memory.size m)

let test_create_too_small () =
  Alcotest.check_raises "size" (Invalid_argument "Memory.create: size < 2")
    (fun () -> ignore (Memory.create 1))

let test_alloc_sequential () =
  let m = Memory.create 100 in
  let a = Memory.alloc m ~name:"a" ~len:10 ~perm:Memory.perm_rw in
  let b = Memory.alloc m ~name:"b" ~len:5 ~perm:Memory.perm_ro in
  Alcotest.(check int) "a base skips NIL" 1 a.Memory.base;
  Alcotest.(check int) "b base" 11 b.Memory.base;
  Alcotest.(check int) "regions" 2 (List.length (Memory.regions m))

let test_alloc_exhaustion () =
  let m = Memory.create 10 in
  Alcotest.(check bool) "raises" true
    (match Memory.alloc m ~name:"big" ~len:100 ~perm:Memory.perm_rw with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_alloc_pow2_alignment () =
  let m = Memory.create 4096 in
  let _pad = Memory.alloc m ~name:"pad" ~len:3 ~perm:Memory.perm_rw in
  let r = Memory.alloc_pow2 m ~name:"sandbox" ~len:100 ~perm:Memory.perm_rw in
  Alcotest.(check int) "len rounded to pow2" 128 r.Memory.len;
  Alcotest.(check int) "base aligned" 0 (r.Memory.base mod 128)

let test_load_store_roundtrip () =
  let m = Memory.create 100 in
  let r = Memory.alloc m ~name:"r" ~len:10 ~perm:Memory.perm_rw in
  Memory.store m r.Memory.base 42;
  Alcotest.(check int) "roundtrip" 42 (Memory.load m r.Memory.base)

let test_nil_faults () =
  let m = Memory.create 100 in
  expect_fault "load NIL" (fun f -> f = Fault.Nil_dereference) (fun () ->
      Memory.load m 0);
  expect_fault "store NIL" (fun f -> f = Fault.Nil_dereference) (fun () ->
      Memory.store m 0 1)

let test_out_of_bounds_faults () =
  let m = Memory.create 100 in
  expect_fault "load oob"
    (function Fault.Out_of_bounds { addr = 100; _ } -> true | _ -> false)
    (fun () -> Memory.load m 100);
  expect_fault "load negative"
    (function Fault.Out_of_bounds { addr = -1; _ } -> true | _ -> false)
    (fun () -> Memory.load m (-1));
  expect_fault "store oob"
    (function Fault.Out_of_bounds _ -> true | _ -> false)
    (fun () -> Memory.store m 100 1)

let test_unmapped_protection () =
  let m = Memory.create 100 in
  (* cell 50 never allocated *)
  expect_fault "unmapped read"
    (function Fault.Protection { access = Fault.Read; _ } -> true | _ -> false)
    (fun () -> Memory.load m 50)

let test_readonly_region () =
  let m = Memory.create 100 in
  let r = Memory.alloc m ~name:"ro" ~len:10 ~perm:Memory.perm_ro in
  (Memory.cells m).(r.Memory.base) <- 7;
  Alcotest.(check int) "ro read ok" 7 (Memory.load m r.Memory.base);
  expect_fault "write to ro"
    (function Fault.Protection { access = Fault.Write; _ } -> true | _ -> false)
    (fun () -> Memory.store m r.Memory.base 1)

let test_protect_revokes () =
  let m = Memory.create 100 in
  let r = Memory.alloc m ~name:"w" ~len:10 ~perm:Memory.perm_rw in
  Memory.store m r.Memory.base 1;
  let r = Memory.protect m r Memory.perm_ro in
  ignore r;
  expect_fault "write revoked"
    (function Fault.Protection _ -> true | _ -> false)
    (fun () -> Memory.store m (r.Memory.base) 2)

let test_unsafe_clamps () =
  let m = Memory.create 100 in
  let _ = Memory.alloc m ~name:"r" ~len:10 ~perm:Memory.perm_rw in
  (* Unsafe accesses never fault; they silently wrap into the physical
     array, modelling a stray pointer corrupting kernel memory. *)
  Memory.unsafe_store m 105 99;
  Alcotest.(check int) "wrapped" 99 (Memory.unsafe_load m 5);
  Memory.unsafe_store m (-1) 7;
  Alcotest.(check int) "negative wraps" 7 (Memory.unsafe_load m 99)

let test_blit_and_read_out () =
  let m = Memory.create 100 in
  let r = Memory.alloc m ~name:"r" ~len:4 ~perm:Memory.perm_rw in
  Memory.blit_in m r [| 1; 2; 3 |];
  let out = Memory.read_out m r in
  Alcotest.(check (array int)) "read back" [| 1; 2; 3; 0 |] out

let test_blit_too_long () =
  let m = Memory.create 100 in
  let r = Memory.alloc m ~name:"r" ~len:2 ~perm:Memory.perm_rw in
  Alcotest.(check bool) "raises" true
    (match Memory.blit_in m r [| 1; 2; 3 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fill () =
  let m = Memory.create 100 in
  let r = Memory.alloc m ~name:"r" ~len:3 ~perm:Memory.perm_rw in
  Memory.fill m r 9;
  Alcotest.(check (array int)) "filled" [| 9; 9; 9 |] (Memory.read_out m r)

let test_region_by_name () =
  let m = Memory.create 100 in
  let _ = Memory.alloc m ~name:"alpha" ~len:3 ~perm:Memory.perm_rw in
  Alcotest.(check bool) "found" true (Memory.region_by_name m "alpha" <> None);
  Alcotest.(check bool) "missing" true (Memory.region_by_name m "beta" = None)

let test_permission_queries () =
  let m = Memory.create 100 in
  let ro = Memory.alloc m ~name:"ro" ~len:2 ~perm:Memory.perm_ro in
  Alcotest.(check bool) "readable" true (Memory.readable m ro.Memory.base);
  Alcotest.(check bool) "not writable" false (Memory.writable m ro.Memory.base);
  Alcotest.(check bool) "nil not readable" false (Memory.readable m 0);
  Alcotest.(check bool) "oob not readable" false (Memory.readable m 1000)

let test_fault_to_string () =
  (* Each constructor renders a distinct human-readable message. *)
  let msgs =
    List.map Fault.to_string
      [
        Fault.Out_of_bounds { access = Fault.Read; addr = 3 };
        Fault.Protection { access = Fault.Write; addr = 4 };
        Fault.Nil_dereference;
        Fault.Fuel_exhausted;
        Fault.Division_by_zero;
        Fault.Stack_overflow;
        Fault.Illegal_instruction "x";
        Fault.Verification_failed "y";
        Fault.Type_error "z";
        Fault.Host_error "w";
      ]
  in
  let uniq = List.sort_uniq compare msgs in
  Alcotest.(check int) "all distinct" (List.length msgs) (List.length uniq)

let prop_checked_load_matches_store =
  QCheck.Test.make ~name:"store then load roundtrips" ~count:200
    QCheck.(pair (int_range 0 63) int)
    (fun (off, v) ->
      let m = Memory.create 128 in
      let r = Memory.alloc m ~name:"r" ~len:64 ~perm:Memory.perm_rw in
      Memory.store m (r.Memory.base + off) v;
      Memory.load m (r.Memory.base + off) = v)

let prop_unsafe_never_faults =
  QCheck.Test.make ~name:"unsafe accesses never fault" ~count:500
    QCheck.(pair int small_int)
    (fun (addr, v) ->
      let m = Memory.create 64 in
      Memory.unsafe_store m addr v;
      ignore (Memory.unsafe_load m addr);
      true)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_mem"
    [
      ( "memory",
        [
          Alcotest.test_case "create" `Quick test_create_and_size;
          Alcotest.test_case "create too small" `Quick test_create_too_small;
          Alcotest.test_case "alloc sequential" `Quick test_alloc_sequential;
          Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "alloc pow2" `Quick test_alloc_pow2_alignment;
          Alcotest.test_case "load/store" `Quick test_load_store_roundtrip;
          Alcotest.test_case "NIL" `Quick test_nil_faults;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_faults;
          Alcotest.test_case "unmapped" `Quick test_unmapped_protection;
          Alcotest.test_case "read-only" `Quick test_readonly_region;
          Alcotest.test_case "protect revokes" `Quick test_protect_revokes;
          Alcotest.test_case "unsafe clamps" `Quick test_unsafe_clamps;
          Alcotest.test_case "blit/read_out" `Quick test_blit_and_read_out;
          Alcotest.test_case "blit too long" `Quick test_blit_too_long;
          Alcotest.test_case "fill" `Quick test_fill;
          Alcotest.test_case "region by name" `Quick test_region_by_name;
          Alcotest.test_case "permission queries" `Quick test_permission_queries;
          Alcotest.test_case "fault messages" `Quick test_fault_to_string;
        ] );
      ("properties", qc [ prop_checked_load_matches_store; prop_unsafe_never_faults ]);
    ]
