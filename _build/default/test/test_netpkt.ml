(* Tests for the packet substrate: packet encoding, demux, the BPF-like
   filter VM (verification, termination, semantics), and the
   packet-filter grafts across all technologies. *)

open Graft_kernel
open Graft_core
open Graft_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- packets ---------- *)

let test_packet_fields () =
  let p =
    Netpkt.make ~protocol:Netpkt.proto_tcp ~src_ip:0x0A000001
      ~dst_ip:0x0A000102 ~src_port:12345 ~dst_port:80
      ~payload:(Bytes.of_string "hello") ()
  in
  check_int "ethertype" Netpkt.ethertype_ip (Netpkt.ethertype p);
  check_int "protocol" Netpkt.proto_tcp (Netpkt.protocol p);
  check_int "src ip" 0x0A000001 (Netpkt.src_ip p);
  check_int "dst ip" 0x0A000102 (Netpkt.dst_ip p);
  check_int "src port" 12345 (Netpkt.src_port p);
  check_int "dst port" 80 (Netpkt.dst_port p);
  check_int "length" (Netpkt.header_bytes + 5) (Netpkt.length p)

let test_traffic_generator () =
  let rng = Prng.create 1L in
  let pkts = Netpkt.random_traffic rng ~count:1000 in
  check_int "count" 1000 (Array.length pkts);
  let ip_count =
    Array.fold_left
      (fun acc p -> if Netpkt.ethertype p = Netpkt.ethertype_ip then acc + 1 else acc)
      0 pkts
  in
  check_bool "mostly ip" true (ip_count > 900);
  check_bool "some non-ip" true (ip_count < 1000)

let test_demux_first_match () =
  let all = Netpkt.endpoint ~name:"all" (fun _ -> true) in
  let never = Netpkt.endpoint ~name:"never" (fun _ -> false) in
  let d = Netpkt.demux [ never; all ] in
  Netpkt.deliver d (Netpkt.make ());
  check_int "second endpoint got it" 1 (Queue.length all.Netpkt.queue);
  check_int "no drops" 0 d.Netpkt.dropped;
  let d2 = Netpkt.demux [ never ] in
  Netpkt.deliver d2 (Netpkt.make ());
  check_int "dropped" 1 d2.Netpkt.dropped

(* ---------- pfvm ---------- *)

let test_pfvm_verify_accepts_builders () =
  List.iter
    (fun p ->
      match Pfvm.verify p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "rejected: %s" m)
    [
      Pfvm.proto_dst_port ~protocol:17 ~port:53;
      Pfvm.between ~a:1 ~b:2;
      [| Pfvm.Ret 1 |];
    ]

let test_pfvm_verify_rejects () =
  let expect_reject p =
    match Pfvm.verify p with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "verifier accepted bad filter"
  in
  expect_reject [||];
  (* backward jump *)
  expect_reject [| Pfvm.Jeq (0, -1, 0); Pfvm.Ret 0 |];
  (* jump out of range *)
  expect_reject [| Pfvm.Jeq (0, 5, 0); Pfvm.Ret 0 |];
  (* falls off the end *)
  expect_reject [| Pfvm.Ld8 0 |];
  (* negative load offset *)
  expect_reject [| Pfvm.Ld8 (-1); Pfvm.Ret 0 |]

let test_pfvm_termination_bound () =
  (* Forward-only jumps: even adversarial verified programs terminate
     in at most |program| steps — run a long chain and just confirm it
     returns. *)
  let n = 10_000 in
  let p =
    Array.init n (fun i ->
        if i = n - 1 then Pfvm.Ret 1 else Pfvm.Jeq (max_int, 0, 0))
  in
  (match Pfvm.verify p with Ok () -> () | Error m -> Alcotest.fail m);
  check_int "terminates" 1 (Pfvm.run p (Netpkt.make ()))

let test_pfvm_truncated_packet_rejects () =
  let p = Pfvm.proto_dst_port ~protocol:17 ~port:53 in
  (* A 10-byte frame: the Ld16 12 is out of range -> reject, no fault. *)
  let short = { Netpkt.data = Bytes.make 10 '\000' } in
  check_int "rejects" 0 (Pfvm.run p short)

let test_pfvm_semantics_vs_native () =
  let rng = Prng.create 0xF17E4L in
  let traffic = Netpkt.random_traffic rng ~count:2000 in
  let p = Pfvm.proto_dst_port ~protocol:Netpkt.proto_udp ~port:53 in
  Array.iter
    (fun pkt ->
      let expect =
        Netpkt.ethertype pkt = Netpkt.ethertype_ip
        && Netpkt.protocol pkt = Netpkt.proto_udp
        && Netpkt.dst_port pkt = 53
      in
      if Pfvm.accepts p pkt <> expect then Alcotest.fail "pfvm disagrees")
    traffic

let test_pfvm_between () =
  let a = 0x0A000001 and b = 0x0A000002 and c = 0x0A000003 in
  let p = Pfvm.between ~a ~b in
  (match Pfvm.verify p with Ok () -> () | Error m -> Alcotest.fail m);
  let mk src dst = Netpkt.make ~src_ip:src ~dst_ip:dst () in
  check_bool "a->b" true (Pfvm.accepts p (mk a b));
  check_bool "b->a" true (Pfvm.accepts p (mk b a));
  check_bool "a->c" false (Pfvm.accepts p (mk a c));
  check_bool "c->b" false (Pfvm.accepts p (mk c b));
  check_bool "c->c" false (Pfvm.accepts p (mk c c));
  let non_ip = Netpkt.make ~ethertype:0x0806 ~src_ip:a ~dst_ip:b () in
  check_bool "non-ip" false (Pfvm.accepts p non_ip)

let test_pfvm_jgt_jset () =
  (* accept packets longer than 64 bytes with low bit of protocol set *)
  let p =
    [|
      Pfvm.Ldlen; Pfvm.Jgt (64, 0, 3); Pfvm.Ld8 23; Pfvm.Jset (1, 0, 1);
      Pfvm.Ret 1; Pfvm.Ret 0;
    |]
  in
  (match Pfvm.verify p with Ok () -> () | Error m -> Alcotest.fail m);
  let big =
    Netpkt.make ~protocol:17 ~payload:(Bytes.make 100 'x') ()
  in
  let small = Netpkt.make ~protocol:17 () in
  let even = Netpkt.make ~protocol:6 ~payload:(Bytes.make 100 'x') () in
  check_bool "big odd proto" true (Pfvm.accepts p big);
  check_bool "small" false (Pfvm.accepts p small);
  check_bool "even proto" false (Pfvm.accepts p even)

(* ---------- filter grafts across technologies ---------- *)

let filter_techs =
  [
    Technology.Unsafe_c; Technology.Safe_lang; Technology.Safe_lang_nil;
    Technology.Sfi_write_jump; Technology.Sfi_full; Technology.Specialized_vm;
    Technology.Bytecode_vm; Technology.Ast_interp; Technology.Source_interp;
  ]

let test_filter_runners_agree () =
  let rng = Prng.create 0xACCE97L in
  let traffic = Netpkt.random_traffic rng ~count:300 in
  let reference =
    Runners.packet_filter Technology.Unsafe_c ~protocol:Netpkt.proto_udp
      ~port:53
  in
  List.iter
    (fun tech ->
      let accepts =
        Runners.packet_filter tech ~protocol:Netpkt.proto_udp ~port:53
      in
      Array.iteri
        (fun i pkt ->
          if accepts pkt <> reference pkt then
            Alcotest.failf "%s disagrees on packet %d" (Technology.name tech) i)
        traffic)
    filter_techs

let test_filter_matches_exist () =
  (* The traffic mix actually exercises both branches. *)
  let rng = Prng.create 0xACCE97L in
  let traffic = Netpkt.random_traffic rng ~count:300 in
  let reference =
    Runners.packet_filter Technology.Unsafe_c ~protocol:Netpkt.proto_udp
      ~port:53
  in
  let matches = Array.fold_left (fun a p -> if reference p then a + 1 else a) 0 traffic in
  check_bool "some match" true (matches > 0);
  check_bool "some do not" true (matches < 300)

let test_specialized_vm_cannot_do_other_grafts () =
  check_bool "evict rejected" true
    (match Runners.evict Technology.Specialized_vm ~capacity_nodes:8 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "md5 rejected" true
    (match Runners.md5 Technology.Specialized_vm ~capacity:64 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "logdisk rejected" true
    (match Runners.logdisk_policy Technology.Specialized_vm ~nblocks:64 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_pfvm_always_terminates =
  (* Any verified random program terminates and returns a value on any
     packet. *)
  QCheck.Test.make ~name:"verified filters terminate" ~count:200
    QCheck.(pair int64 (int_range 1 40))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let p =
        Array.init n (fun i ->
            let remaining = n - i - 1 in
            if remaining = 0 then Pfvm.Ret (Prng.int rng 2)
            else
              match Prng.int rng 8 with
              | 0 -> Pfvm.Ld8 (Prng.int rng 64)
              | 1 -> Pfvm.Ld16 (Prng.int rng 64)
              | 2 -> Pfvm.Ldlen
              | 3 -> Pfvm.And (Prng.int rng 256)
              | 4 -> Pfvm.Add (Prng.int rng 10)
              | 5 ->
                  Pfvm.Jeq
                    (Prng.int rng 256, Prng.int rng remaining, Prng.int rng remaining)
              | 6 ->
                  Pfvm.Jgt
                    (Prng.int rng 256, Prng.int rng remaining, Prng.int rng remaining)
              | _ -> Pfvm.Ret (Prng.int rng 2))
      in
      match Pfvm.verify p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let pkt = Netpkt.make ~payload:(Prng.bytes rng (Prng.int rng 64)) () in
          let v = Pfvm.run p pkt in
          v = 0 || v = 1)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_netpkt"
    [
      ( "packets",
        [
          Alcotest.test_case "fields" `Quick test_packet_fields;
          Alcotest.test_case "traffic" `Quick test_traffic_generator;
          Alcotest.test_case "demux first match" `Quick test_demux_first_match;
        ] );
      ( "pfvm",
        [
          Alcotest.test_case "verify accepts" `Quick test_pfvm_verify_accepts_builders;
          Alcotest.test_case "verify rejects" `Quick test_pfvm_verify_rejects;
          Alcotest.test_case "termination" `Quick test_pfvm_termination_bound;
          Alcotest.test_case "truncated packet" `Quick test_pfvm_truncated_packet_rejects;
          Alcotest.test_case "semantics vs native" `Quick test_pfvm_semantics_vs_native;
          Alcotest.test_case "between" `Quick test_pfvm_between;
          Alcotest.test_case "jgt/jset" `Quick test_pfvm_jgt_jset;
        ]
        @ qc [ prop_pfvm_always_terminates ] );
      ( "runners",
        [
          Alcotest.test_case "all agree" `Quick test_filter_runners_agree;
          Alcotest.test_case "mix exercises both" `Quick test_filter_matches_exist;
          Alcotest.test_case "expressiveness limit" `Quick
            test_specialized_vm_cannot_do_other_grafts;
        ] );
    ]
