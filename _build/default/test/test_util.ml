(* Tests for graft_util: stats, prng, tablefmt, asciiplot, timer. *)

open Graft_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- Stats ---------- *)

let test_mean () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "mean single" 5.0 (Stats.mean [| 5.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.mean: empty sample array") (fun () ->
      ignore (Stats.mean [||]))

let test_stddev () =
  (* Known: stddev of [2;4;4;4;5;5;7;9] with n-1 denominator. *)
  let s = Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float ~eps:1e-6 "stddev" 2.13809 s;
  check_float "stddev singleton" 0.0 (Stats.stddev [| 3.0 |])

let test_summarize () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 3.0 s.Stats.max;
  check_float "median" 2.0 s.Stats.median;
  check_float "mean" 2.0 s.Stats.mean

let test_rel_stddev () =
  let s = Stats.summarize [| 10.0; 10.0 |] in
  check_float "zero spread" 0.0 (Stats.rel_stddev_pct s);
  let s0 = Stats.summarize [| 0.0; 0.0 |] in
  check_float "zero mean" 0.0 (Stats.rel_stddev_pct s0)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p100" 4.0 (Stats.percentile 100.0 xs);
  check_float "p50" 2.5 (Stats.percentile 50.0 xs)

let test_linear_fit () =
  let a, b = Stats.linear_fit [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  check_float "intercept" 1.0 a;
  check_float "slope" 2.0 b

let test_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |])

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  Alcotest.(check bool) "different streams" true (Prng.next a <> Prng.next b)

let test_prng_int_bounds () =
  let r = Prng.create 7L in
  for _ = 1 to 10_000 do
    let v = Prng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_prng_int_invalid () =
  let r = Prng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (Prng.int r 0))

let test_prng_float_range () =
  let r = Prng.create 11L in
  for _ = 1 to 10_000 do
    let v = Prng.float r in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of range: %f" v
  done

let test_prng_uniformish () =
  (* Coarse uniformity: 10 buckets, 10k draws, each bucket within 3x
     of expectation. This is a smoke test, not a statistical test. *)
  let r = Prng.create 13L in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Prng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 300 || c > 3000 then Alcotest.failf "bucket %d skewed: %d" i c)
    buckets

let test_prng_shuffle_permutation () =
  let r = Prng.create 5L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_bytes () =
  let r = Prng.create 3L in
  let b = Prng.bytes r 1000 in
  Alcotest.(check int) "length" 1000 (Bytes.length b);
  (* Not all identical *)
  let first = Bytes.get b 0 in
  Alcotest.(check bool) "varied" true
    (Bytes.exists (fun c -> c <> first) b)

let test_prng_split_independent () =
  let r = Prng.create 9L in
  let s = Prng.split r in
  Alcotest.(check bool) "split differs" true (Prng.next r <> Prng.next s)

(* ---------- Tablefmt ---------- *)

let test_table_render () =
  let t = Tablefmt.create [| "Platform"; "Time" |] in
  Tablefmt.add_row t [| "Alpha"; "19.5us" |];
  Tablefmt.add_row t [| "Linux"; "55.9us" |];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "has header" true
    (contains s "Platform");
  Alcotest.(check bool) "has row" true (contains s "55.9us")

let test_table_pad_short_row () =
  let t = Tablefmt.create [| "a"; "b"; "c" |] in
  Tablefmt.add_row t [| "x" |];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_too_many_cells () =
  let t = Tablefmt.create [| "a" |] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Tablefmt.add_row: too many cells") (fun () ->
      Tablefmt.add_row t [| "x"; "y" |])

(* ---------- Asciiplot ---------- *)

let test_plot_renders () =
  let s =
    Asciiplot.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [
        {
          Asciiplot.label = "line";
          points = [| (0.0, 0.0); (10.0, 100.0) |];
          glyph = '*';
        };
      ]
  in
  Alcotest.(check bool) "nonempty" true (String.length s > 100);
  Alcotest.(check bool) "glyph plotted" true (contains s "*")

let test_plot_empty () =
  Alcotest.(check string) "empty" "(empty plot)\n" (Asciiplot.render [])

let test_plot_logy () =
  let s =
    Asciiplot.render ~logy:true
      [
        {
          Asciiplot.label = "l";
          points = [| (0.0, 1.0); (1.0, 10000.0) |];
          glyph = '+';
        };
      ]
  in
  Alcotest.(check bool) "renders log" true (String.length s > 0)

(* ---------- Timer ---------- *)

let test_timer_measures () =
  let count = ref 0 in
  let m = Timer.measure ~runs:3 ~iters:100 (fun () -> incr count) in
  Alcotest.(check int) "iters recorded" 100 m.Timer.iters;
  Alcotest.(check int) "runs recorded" 3 m.Timer.runs;
  (* warmup(1) + 3 runs, 100 iters each *)
  Alcotest.(check int) "call count" 400 !count;
  Alcotest.(check bool) "nonnegative time" true (m.Timer.per_call_s.Stats.mean >= 0.0)

let test_timer_time_it () =
  let elapsed, v = Timer.time_it (fun () -> 42) in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check bool) "elapsed >= 0" true (elapsed >= 0.0)

let test_timer_calibrate () =
  let iters = Timer.calibrate_iters ~target_s:0.001 (fun () -> ()) in
  Alcotest.(check bool) "positive" true (iters >= 1)

let test_pp_seconds () =
  Alcotest.(check string) "ns" "500ns" (Timer.pp_seconds 5e-7);
  Alcotest.(check string) "us" "12.3us" (Timer.pp_seconds 1.23e-5);
  Alcotest.(check string) "ms" "4ms" (Timer.pp_seconds 4e-3);
  Alcotest.(check string) "s" "2.5s" (Timer.pp_seconds 2.5);
  Alcotest.(check string) "zero" "0s" (Timer.pp_seconds 0.0)

(* ---------- QCheck properties ---------- *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 20) (float_range 0. 1000.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within min..max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.mean >= s.Stats.min -. 1e-6 && s.Stats.mean <= s.Stats.max +. 1e-6)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair int64 (array small_int))
    (fun (seed, a) ->
      let r = Prng.create seed in
      let b = Array.copy a in
      Prng.shuffle r b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_util"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "rel stddev" `Quick test_rel_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "geomean" `Quick test_geomean;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniform-ish" `Quick test_prng_uniformish;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "bytes" `Quick test_prng_bytes;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short row" `Quick test_table_pad_short_row;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
        ] );
      ( "asciiplot",
        [
          Alcotest.test_case "renders" `Quick test_plot_renders;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "log y" `Quick test_plot_logy;
        ] );
      ( "timer",
        [
          Alcotest.test_case "measure" `Quick test_timer_measures;
          Alcotest.test_case "time_it" `Quick test_timer_time_it;
          Alcotest.test_case "calibrate" `Quick test_timer_calibrate;
          Alcotest.test_case "pp_seconds" `Quick test_pp_seconds;
        ] );
      ( "properties",
        qc [ prop_percentile_monotone; prop_mean_bounded; prop_shuffle_preserves_multiset ] );
    ]
