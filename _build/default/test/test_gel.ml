(* Tests for graft_gel: lexer, parser, typechecker, linker, and the
   reference interpreter. *)

open Graft_gel
open Graft_mem

(* ---------- helpers ---------- *)

let compile_ok src =
  match Gel.compile src with
  | Ok prog -> prog
  | Error e -> Alcotest.failf "unexpected compile error: %s" (Srcloc.to_string e)

let compile_err src =
  match Gel.compile src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e -> e.Srcloc.msg

let run_main ?(entry = "main") ?(args = [||]) ?(fuel = 10_000_000) ?hosts src =
  let prog = compile_ok src in
  match Link.link_fresh ?hosts prog with
  | Error msg -> Alcotest.failf "link error: %s" msg
  | Ok image -> (
      match Interp.run image ~entry ~args ~fuel with
      | Ok v -> v
      | Error (`Fault f) -> Alcotest.failf "fault: %s" (Fault.to_string f)
      | Error (`Bad_entry msg) -> Alcotest.failf "bad entry: %s" msg)

let run_fault ?(entry = "main") ?(args = [||]) ?(fuel = 10_000_000) src =
  let prog = compile_ok src in
  match Link.link_fresh prog with
  | Error msg -> Alcotest.failf "link error: %s" msg
  | Ok image -> (
      match Interp.run image ~entry ~args ~fuel with
      | Ok v -> Alcotest.failf "expected fault, got %d" v
      | Error (`Fault f) -> f
      | Error (`Bad_entry msg) -> Alcotest.failf "bad entry: %s" msg)

let check_int = Alcotest.(check int)

(* ---------- lexer ---------- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lex_operators () =
  Alcotest.(check bool) "shr vs lshr" true
    (toks "a >> b >>> c"
    = [ Token.IDENT "a"; Token.SHR; Token.IDENT "b"; Token.LSHR;
        Token.IDENT "c"; Token.EOF ])

let test_lex_hex () =
  Alcotest.(check bool) "hex" true
    (toks "0xFF 0x0" = [ Token.INT 255; Token.INT 0; Token.EOF ])

let test_lex_comments () =
  Alcotest.(check bool) "comments skipped" true
    (toks "1 // line\n /* block \n multi */ 2" = [ Token.INT 1; Token.INT 2; Token.EOF ])

let test_lex_unterminated_comment () =
  Alcotest.(check bool) "raises" true
    (match Lexer.tokenize "/* oops" with
    | exception Srcloc.Error _ -> true
    | _ -> false)

let test_lex_bad_char () =
  Alcotest.(check bool) "raises" true
    (match Lexer.tokenize "a @ b" with
    | exception Srcloc.Error _ -> true
    | _ -> false)

let test_lex_positions () =
  let tokens = Lexer.tokenize "a\n  b" in
  match tokens with
  | [ (_, p1); (_, p2); _ ] ->
      check_int "line a" 1 p1.Srcloc.line;
      check_int "line b" 2 p2.Srcloc.line;
      check_int "col b" 3 p2.Srcloc.col
  | _ -> Alcotest.fail "unexpected token count"

(* ---------- parser / precedence via evaluation ---------- *)

let test_precedence_mul_add () =
  check_int "1+2*3" 7 (run_main "fn main() : int { return 1 + 2 * 3; }")

let test_precedence_shift_cmp () =
  (* 1 << 2 < 5 parses as (1 << 2) < 5 = 4 < 5 = true. *)
  check_int "shift vs cmp" 1
    (run_main "fn main() : int { if (1 << 2 < 5) { return 1; } return 0; }")

let test_precedence_band_cmp () =
  (* & binds tighter than == in GEL (unlike C). *)
  check_int "band vs eq" 1
    (run_main "fn main() : int { if (3 & 1 == 1) { return 1; } return 0; }")

let test_parse_error_missing_semi () =
  Alcotest.(check bool) "raises" true
    (match Gel.compile "fn main() : int { return 1 }" with
    | Error _ -> true
    | Ok _ -> false)

let test_parse_else_if () =
  let src =
    "fn pick(x : int) : int {\n\
     if (x == 0) { return 10; }\n\
     else if (x == 1) { return 20; }\n\
     else { return 30; }\n\
     }"
  in
  check_int "else-if 0" 10 (run_main ~entry:"pick" ~args:[| 0 |] src);
  check_int "else-if 1" 20 (run_main ~entry:"pick" ~args:[| 1 |] src);
  check_int "else-if 2" 30 (run_main ~entry:"pick" ~args:[| 2 |] src)

let test_array_initializer () =
  let src =
    "array t[4] : word = { 0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476 };\n\
     fn main() : int { return int(t[1] >> 24); }"
  in
  check_int "init word array" 0xef (run_main src)

let test_trailing_comma_initializer () =
  check_int "trailing comma" 2
    (run_main "array t[3] = { 1, 2, };\nfn main() : int { return t[1]; }")

(* ---------- typechecker ---------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let expect_err src fragment =
  let msg = compile_err src in
  if not (contains msg fragment) then
    Alcotest.failf "error %S does not mention %S" msg fragment

let test_type_mismatch () =
  expect_err "fn main() : int { var b : bool = true; return b + 1; }" "bool"

let test_word_int_no_mix () =
  expect_err
    "fn main() : int { var w : word = 1; var i : int = 2; return int(w + i); }"
    "mismatch"

let test_unbound_var () = expect_err "fn main() : int { return x; }" "unbound"

let test_break_outside_loop () =
  expect_err "fn main() : int { break; return 1; }" "break outside"

let test_continue_outside_loop () =
  expect_err "fn main() : int { continue; return 1; }" "continue outside"

let test_missing_return () =
  expect_err "fn main() : int { var x = 1; }" "return on every path"

let test_return_both_branches_ok () =
  check_int "both branches" 5
    (run_main
       "fn main() : int { if (true) { return 5; } else { return 6; } }")

let test_duplicate_toplevel () =
  expect_err "var x : int = 1;\nvar x : int = 2;\nfn main() : int { return x; }"
    "duplicate"

let test_duplicate_local_same_scope () =
  expect_err "fn main() : int { var x = 1; var x = 2; return x; }"
    "already declared"

let test_shadowing_in_nested_scope_ok () =
  check_int "shadowing" 3
    (run_main
       "fn main() : int { var x = 1; if (true) { var x = 2; x = 3; return x; } \
        return x; }")

let test_void_in_expression () =
  expect_err "fn f() { return; }\nfn main() : int { return f(); }" "void"

let test_arity_mismatch () =
  expect_err "fn f(a : int) : int { return a; }\nfn main() : int { return f(); }"
    "expects 1 arguments"

let test_array_without_subscript () =
  expect_err "array a[4];\nfn main() : int { return a; }" "without a subscript"

let test_subscript_must_be_int () =
  expect_err
    "array a[4];\nfn main() : int { var w : word = 0; return a[w]; }"
    "subscript"

let test_shared_array_no_init () =
  Alcotest.(check bool) "rejected at parse" true
    (match Gel.compile "shared array h[4] = { 1 };" with
    | Error _ -> true
    | Ok _ -> false)

let test_word_literal_range () =
  expect_err "var w : word = 0x1FFFFFFFF;\nfn main() : int { return 0; }"
    "out of range"

let test_condition_must_be_bool () =
  expect_err "fn main() : int { if (1) { return 1; } return 0; }" "bool"

let test_assign_type_mismatch () =
  expect_err "fn main() : int { var x = 1; x = true; return x; }" "assign"

(* ---------- interpreter: programs ---------- *)

let test_factorial_recursive () =
  let src =
    "fn fact(n : int) : int { if (n <= 1) { return 1; } return n * fact(n - 1); }"
  in
  check_int "10!" 3628800 (run_main ~entry:"fact" ~args:[| 10 |] src)

let test_fib_loop () =
  let src =
    "fn fib(n : int) : int {\n\
     var a = 0; var b = 1;\n\
     for (var i = 0; i < n; i = i + 1) { var t = a + b; a = b; b = t; }\n\
     return a;\n\
     }"
  in
  check_int "fib 20" 6765 (run_main ~entry:"fib" ~args:[| 20 |] src)

let test_gcd_while () =
  let src =
    "fn gcd(a : int, b : int) : int {\n\
     while (b != 0) { var t = a % b; a = b; b = t; }\n\
     return a;\n\
     }"
  in
  check_int "gcd" 12 (run_main ~entry:"gcd" ~args:[| 48; 36 |] src)

let test_word_wraparound () =
  check_int "word add wraps" 0
    (run_main
       "fn main() : int { var w : word = 0xFFFFFFFF; return int(w + 1); }");
  check_int "word sub wraps" 0xFFFFFFFF
    (run_main "fn main() : int { var w : word = 0; return int(w - 1); }")

let test_word_mul_mod32 () =
  (* 0x10001 * 0x10001 = 0x100020001 -> low 32 bits 0x00020001 *)
  check_int "word mul" 0x20001
    (run_main
       "fn main() : int { var w : word = 0x10001; return int(w * w); }")

let test_word_rotation_idiom () =
  (* rotl(x, n) written with shifts, as MD5 does. *)
  let rotl_src x n =
    Printf.sprintf
      "fn main() : int { var x : word = word(%d); var n = %d;\n\
       return int((x << n) | (x >>> (32 - n))); }"
      x n
  in
  check_int "rotl(1,31)" 0x80000000 (run_main (rotl_src 1 31));
  check_int "rotl(0x80000081,7)" (Wordops.rotl 0x80000081 7)
    (run_main (rotl_src 0x80000081 7))

let test_word_shr_logical () =
  check_int "word >> is logical" 0x7FFFFFFF
    (run_main
       "fn main() : int { var w : word = 0xFFFFFFFF; return int(w >> 1); }")

let test_int_shr_arithmetic () =
  check_int "int >> keeps sign" (-2)
    (run_main "fn main() : int { var x = -4; return x >> 1; }")

let test_break_continue () =
  let src =
    "fn main() : int {\n\
     var sum = 0;\n\
     for (var i = 0; i < 100; i = i + 1) {\n\
     if (i % 2 == 0) { continue; }\n\
     if (i > 10) { break; }\n\
     sum = sum + i;\n\
     }\n\
     return sum;\n\
     }"
  in
  (* odd numbers 1..9: 1+3+5+7+9 = 25 *)
  check_int "break/continue" 25 (run_main src)

let test_continue_runs_for_step () =
  (* If continue skipped the step, this would loop forever and exhaust
     fuel rather than return. *)
  let src =
    "fn main() : int {\n\
     var n = 0;\n\
     for (var i = 0; i < 10; i = i + 1) { continue; }\n\
     return 7;\n\
     }"
  in
  check_int "for-continue terminates" 7 (run_main ~fuel:100_000 src)

let test_nested_loops_break_inner () =
  let src =
    "fn main() : int {\n\
     var count = 0;\n\
     for (var i = 0; i < 3; i = i + 1) {\n\
     var j = 0;\n\
     while (true) { j = j + 1; if (j == 4) { break; } }\n\
     count = count + j;\n\
     }\n\
     return count;\n\
     }"
  in
  check_int "nested" 12 (run_main src)

let test_globals_persist () =
  let src =
    "var counter : int = 100;\n\
     fn bump() { counter = counter + 1; }\n\
     fn main() : int { bump(); bump(); bump(); return counter; }"
  in
  check_int "globals" 103 (run_main src)

let test_global_word_init_folded () =
  check_int "const fold" 0xF0
    (run_main
       "var k : word = 0xF << 4;\nfn main() : int { return int(k); }")

let test_short_circuit_and () =
  (* a[9] would fault; && must not evaluate it. *)
  let src =
    "array a[4];\n\
     fn main() : int { if (false && a[9] == 1) { return 1; } return 2; }"
  in
  check_int "short-circuit &&" 2 (run_main src)

let test_short_circuit_or () =
  let src =
    "array a[4];\n\
     fn main() : int { if (true || a[9] == 1) { return 1; } return 2; }"
  in
  check_int "short-circuit ||" 1 (run_main src)

let test_bool_ops () =
  check_int "bool logic" 1
    (run_main
       "fn main() : int { var t = true; var f = false;\n\
        if ((t || f) && !(t && f)) { return 1; } return 0; }")

let test_forward_reference () =
  (* Functions may call functions defined later. *)
  check_int "forward call" 21
    (run_main
       "fn main() : int { return helper(20); }\n\
        fn helper(x : int) : int { return x + 1; }")

let test_mutual_recursion () =
  let src =
    "fn even(n : int) : int { if (n == 0) { return 1; } return odd(n - 1); }\n\
     fn odd(n : int) : int { if (n == 0) { return 0; } return even(n - 1); }"
  in
  check_int "even 10" 1 (run_main ~entry:"even" ~args:[| 10 |] src);
  check_int "odd 10" 0 (run_main ~entry:"odd" ~args:[| 10 |] src)

let test_nested_calls_as_args () =
  check_int "nesting" 30
    (run_main
       "fn add(a : int, b : int) : int { return a + b; }\n\
        fn main() : int { return add(add(5, 10), add(7, 8)); }")

let test_many_params () =
  check_int "six params" 21
    (run_main
       "fn sum6(a : int, b : int, c : int, d : int, e : int, f : int) : int {\n\
        return a + b + c + d + e + f; }\n\
        fn main() : int { return sum6(1, 2, 3, 4, 5, 6); }")

let test_word_division () =
  (* Word division is unsigned: 0xFFFFFFFF / 2 = 0x7FFFFFFF. *)
  check_int "unsigned div" 0x7FFFFFFF
    (run_main
       "fn main() : int { var w : word = 0xFFFFFFFF; return int(w / 2); }");
  check_int "unsigned mod" 3
    (run_main
       "fn main() : int { var w : word = 0xFFFFFFFF; var d : word = 4;\n\
        return int(w % d); }")

let test_deeply_nested_expression () =
  (* Deep but balanced expression; all engines must handle it. *)
  let rec build n = if n = 0 then "1" else Printf.sprintf "(%s + %s)" (build (n - 1)) "1" in
  let src = Printf.sprintf "fn main() : int { return %s; }" (build 40) in
  check_int "deep expr" 41 (run_main src)

let test_empty_function_body_void () =
  check_int "void empty" 7
    (run_main "fn noop() { }\nfn main() : int { noop(); return 7; }")

let test_comparison_chains_rejected () =
  (* a < b < c is (a < b) < c: bool meets int -> type error. *)
  expect_err "fn main() : int { if (1 < 2 < 3) { return 1; } return 0; }"
    "mismatch"

(* ---------- faults ---------- *)

let test_fault_div_zero () =
  match run_fault "fn main(a : int) : int { return 1 / a; }" ~args:[| 0 |] with
  | Fault.Division_by_zero -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_fault_mod_zero () =
  match run_fault "fn main(a : int) : int { return 1 % a; }" ~args:[| 0 |] with
  | Fault.Division_by_zero -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_fault_array_oob () =
  match
    run_fault "array a[4];\nfn main(i : int) : int { return a[i]; }"
      ~args:[| 4 |]
  with
  | Fault.Out_of_bounds _ -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_fault_array_negative () =
  match
    run_fault "array a[4];\nfn main(i : int) : int { return a[i]; }"
      ~args:[| -1 |]
  with
  | Fault.Out_of_bounds _ -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_fault_fuel () =
  match
    run_fault ~fuel:1000 "fn main() : int { while (true) { } return 0; }"
  with
  | Fault.Fuel_exhausted -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_fault_stack_overflow () =
  match
    run_fault "fn f(n : int) : int { return f(n + 1); }" ~entry:"f"
      ~args:[| 0 |]
  with
  | Fault.Stack_overflow -> ()
  | f -> Alcotest.failf "wrong fault: %s" (Fault.to_string f)

let test_kernel_survives_fault () =
  (* The host must carry on after a graft faults: run a faulting graft,
     then a healthy one, against the same image. *)
  let prog =
    compile_ok
      "array a[2];\n\
       fn bad() : int { return a[99]; }\n\
       fn good() : int { return 41 + 1; }"
  in
  let image = Result.get_ok (Link.link_fresh prog) in
  (match Interp.run image ~entry:"bad" ~args:[||] ~fuel:1000 with
  | Error (`Fault (Fault.Out_of_bounds _)) -> ()
  | _ -> Alcotest.fail "bad graft should fault");
  match Interp.run image ~entry:"good" ~args:[||] ~fuel:1000 with
  | Ok v -> check_int "kernel survives" 42 v
  | _ -> Alcotest.fail "good graft should run"

(* ---------- linking ---------- *)

let test_shared_array_binding () =
  let prog =
    compile_ok
      "shared array hot[8];\n\
       fn sum() : int {\n\
       var s = 0;\n\
       for (var i = 0; i < 8; i = i + 1) { s = s + hot[i]; }\n\
       return s;\n\
       }"
  in
  let mem = Memory.create 256 in
  let window = Memory.alloc mem ~name:"hot_window" ~len:8 ~perm:Memory.perm_ro in
  Memory.blit_in mem window [| 1; 2; 3; 4; 5; 6; 7; 8 |];
  (* blit_in works regardless of graft perms: the kernel writes its own
     memory directly. *)
  match Link.link prog ~mem ~shared:[ ("hot", window) ] ~hosts:[] with
  | Error msg -> Alcotest.failf "link: %s" msg
  | Ok image -> (
      match Interp.run image ~entry:"sum" ~args:[||] ~fuel:100_000 with
      | Ok v -> check_int "sum of shared" 36 v
      | Error (`Fault f) -> Alcotest.failf "fault: %s" (Fault.to_string f)
      | Error (`Bad_entry m) -> Alcotest.fail m)

let test_shared_array_readonly_store_faults () =
  let prog =
    compile_ok "shared array hot[4];\nfn poke() : int { hot[0] = 9; return 0; }"
  in
  let mem = Memory.create 256 in
  let window = Memory.alloc mem ~name:"w" ~len:4 ~perm:Memory.perm_ro in
  match Link.link prog ~mem ~shared:[ ("hot", window) ] ~hosts:[] with
  | Error msg -> Alcotest.failf "link: %s" msg
  | Ok image -> (
      match Interp.run image ~entry:"poke" ~args:[||] ~fuel:1000 with
      | Error (`Fault (Fault.Protection _)) -> ()
      | Ok _ -> Alcotest.fail "store to RO window must fault"
      | Error e ->
          Alcotest.failf "wrong error: %s"
            (match e with
            | `Fault f -> Fault.to_string f
            | `Bad_entry m -> m))

let test_unbound_shared_array () =
  let prog = compile_ok "shared array hot[4];\nfn f() : int { return hot[0]; }" in
  let mem = Memory.create 64 in
  match Link.link prog ~mem ~shared:[] ~hosts:[] with
  | Error msg ->
      Alcotest.(check bool) "mentions array" true (contains msg "hot")
  | Ok _ -> Alcotest.fail "must fail to link"

let test_window_too_small () =
  let prog = compile_ok "shared array hot[8];\nfn f() : int { return hot[0]; }" in
  let mem = Memory.create 64 in
  let window = Memory.alloc mem ~name:"w" ~len:4 ~perm:Memory.perm_ro in
  match Link.link prog ~mem ~shared:[ ("hot", window) ] ~hosts:[] with
  | Error msg -> Alcotest.(check bool) "mentions size" true (contains msg "cells")
  | Ok _ -> Alcotest.fail "must fail to link"

let test_extern_host_call () =
  let calls = ref [] in
  let hosts =
    [
      { Link.hname = "log2arg"; hfn = (fun args -> calls := args.(0) :: !calls; 0) };
      { Link.hname = "mul3"; hfn = (fun args -> args.(0) * 3) };
    ]
  in
  let v =
    run_main ~hosts
      "extern fn log2arg(int);\n\
       extern fn mul3(int) : int;\n\
       fn main() : int { log2arg(7); log2arg(8); return mul3(5); }"
  in
  check_int "extern result" 15 v;
  Alcotest.(check (list int)) "extern side effects" [ 8; 7 ] !calls

let test_missing_extern () =
  let prog = compile_ok "extern fn f() : int;\nfn main() : int { return f(); }" in
  match Link.link_fresh prog with
  | Error msg -> Alcotest.(check bool) "mentions extern" true (contains msg "f")
  | Ok _ -> Alcotest.fail "must fail to link"

let test_bad_entry () =
  let prog = compile_ok "fn main() : int { return 0; }" in
  let image = Result.get_ok (Link.link_fresh prog) in
  (match Interp.run image ~entry:"nope" ~args:[||] ~fuel:10 with
  | Error (`Bad_entry _) -> ()
  | _ -> Alcotest.fail "expected bad entry");
  match Interp.run image ~entry:"main" ~args:[| 1 |] ~fuel:10 with
  | Error (`Bad_entry _) -> ()
  | _ -> Alcotest.fail "expected arity error"

(* ---------- pretty ---------- *)

let test_pretty_output () =
  let prog2 =
    compile_ok "fn main(x : int) : int { while (x > 0) { x = x - 1; } return x; }"
  in
  let s = Pretty.program prog2 in
  Alcotest.(check bool) "mentions while" true (contains s "while");
  Alcotest.(check bool) "mentions fn" true (contains s "fn main")

(* ---------- optimizer ---------- *)

let opt_run ?(entry = "main") ?(args = [||]) src =
  let prog = Gel.compile_exn ~optimize:true src in
  match Link.link_fresh prog with
  | Error msg -> Alcotest.failf "link error: %s" msg
  | Ok image -> (
      match Interp.run image ~entry ~args ~fuel:10_000_000 with
      | Ok v -> v
      | Error (`Fault f) -> Alcotest.failf "fault: %s" (Fault.to_string f)
      | Error (`Bad_entry m) -> Alcotest.failf "bad entry: %s" m)

let ir_size src ~optimize =
  Ir.size (Gel.compile_exn ~optimize src)

let test_opt_constant_folding () =
  let src = "fn main() : int { return 2 * 3 + 4 * 5 - (7 & 3); }" in
  check_int "value" 23 (opt_run src);
  (* Fully folded: body is a single return of a constant. *)
  check_int "folded to one node" 2 (ir_size src ~optimize:true)

let test_opt_dead_branch () =
  let src =
    "fn main() : int { if (1 < 2) { return 10; } else { return 20; } }"
  in
  check_int "value" 10 (opt_run src);
  Alcotest.(check bool) "branch pruned" true
    (ir_size src ~optimize:true < ir_size src ~optimize:false)

let test_opt_dead_while () =
  let src =
    "fn main() : int { while (false) { var x = 1; x = x + 1; } return 3; }"
  in
  check_int "value" 3 (opt_run src);
  check_int "loop removed" 2 (ir_size src ~optimize:true)

let test_opt_identities () =
  let src =
    "fn main(a : int) : int { return (a + 0) * 1 + (a ^ 0) - (a | 0) + (0 + a); }"
  in
  check_int "value" 14 (opt_run ~args:[| 7 |] src);
  (* Each identity collapses to a bare local read. *)
  Alcotest.(check bool) "shrunk" true
    (ir_size src ~optimize:true < ir_size src ~optimize:false)

let test_opt_preserves_div_fault () =
  (* 1/0 must not be folded away or into a crash at compile time. *)
  let prog = Gel.compile_exn ~optimize:true "fn main() : int { return 1 / 0; }" in
  let image = Result.get_ok (Link.link_fresh prog) in
  match Interp.run image ~entry:"main" ~args:[||] ~fuel:1000 with
  | Error (`Fault Fault.Division_by_zero) -> ()
  | _ -> Alcotest.fail "fault must be preserved"

let test_opt_preserves_impure_mul_zero () =
  (* 0 * f() must still call f (side effect). *)
  let src =
    "var hits : int = 0;
     fn f() : int { hits = hits + 1; return 5; }
     fn main() : int { var z = 0 * f(); return hits + z; }"
  in
  check_int "call kept" 1 (opt_run src)

let test_opt_drops_pure_eval () =
  let src = "fn main() : int { 1 + 2; return 9; }" in
  check_int "value" 9 (opt_run src);
  check_int "statement dropped" 2 (ir_size src ~optimize:true)

let test_opt_short_circuit_consts () =
  check_int "false && -> 0" 2
    (opt_run
       "array a[2];
        fn main() : int { if (false && a[0] == 1) { return 1; } return 2; }");
  check_int "true || -> 1" 1
    (opt_run
       "array a[2];
        fn main() : int { if (true || a[0] == 1) { return 1; } return 2; }")

(* ---------- differential properties ---------- *)

let genint = QCheck.int_range (-1000000) 1000000

let prop_int_arith_matches_host =
  QCheck.Test.make ~name:"int arithmetic matches OCaml" ~count:300
    QCheck.(triple (int_range 0 10) genint genint)
    (fun (opi, a, b) ->
      let ops =
        [| ("+", ( + )); ("-", ( - )); ("*", ( * ));
           ("/", (fun a b -> if b = 0 then 0 else a / b));
           ("%", (fun a b -> if b = 0 then 0 else a mod b));
           ("&", ( land )); ("|", ( lor )); ("^", ( lxor ));
           ("<<", (fun a b -> Wordops.int_shl a (abs b)));
           (">>", (fun a b -> Wordops.int_shr a (abs b)));
           (">>>", (fun a b -> Wordops.int_lshr a (abs b)));
        |]
      in
      let name, f = ops.(opi) in
      let b = match name with "<<" | ">>" | ">>>" -> abs b | _ -> b in
      if (name = "/" || name = "%") && b = 0 then true
      else begin
        let src =
          Printf.sprintf "fn main(a : int, b : int) : int { return a %s b; }"
            name
        in
        run_main ~args:[| a; b |] src = f a b
      end)

let prop_word_arith_matches_wordops =
  QCheck.Test.make ~name:"word arithmetic matches Wordops" ~count:300
    QCheck.(triple (int_range 0 7) (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF))
    (fun (opi, a, b) ->
      let ops =
        [| ("+", Wordops.add); ("-", Wordops.sub); ("*", Wordops.mul);
           ("&", Wordops.band); ("|", Wordops.bor); ("^", Wordops.bxor);
           ("<<", (fun a b -> Wordops.shl a (b land 31)));
           (">>", (fun a b -> Wordops.shr a (b land 31)));
        |]
      in
      let name, f = ops.(opi) in
      let b' = match name with "<<" | ">>" -> b land 31 | _ -> b in
      let src =
        match name with
        | "<<" | ">>" ->
            (* shift amounts are ints in GEL *)
            Printf.sprintf
              "fn main(a : int, b : int) : int { var x : word = word(a); \
               return int(x %s b); }"
              name
        | _ ->
            Printf.sprintf
              "fn main(a : int, b : int) : int { var x : word = word(a); var \
               y : word = word(b); return int(x %s y); }"
              name
      in
      run_main ~args:[| a; b' |] src = f a b')

let prop_cmp_matches =
  QCheck.Test.make ~name:"comparisons match OCaml" ~count:200
    QCheck.(triple (int_range 0 5) genint genint)
    (fun (opi, a, b) ->
      let ops =
        [| ("<", ( < )); ("<=", ( <= )); (">", ( > )); (">=", ( >= ));
           ("==", ( = )); ("!=", ( <> ));
        |]
      in
      let name, f = ops.(opi) in
      let src =
        Printf.sprintf
          "fn main(a : int, b : int) : int { if (a %s b) { return 1; } return \
           0; }"
          name
      in
      run_main ~args:[| a; b |] src = if f a b then 1 else 0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_gel"
    [
      ( "lexer",
        [
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "hex" `Quick test_lex_hex;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "unterminated comment" `Quick test_lex_unterminated_comment;
          Alcotest.test_case "bad char" `Quick test_lex_bad_char;
          Alcotest.test_case "positions" `Quick test_lex_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "mul/add precedence" `Quick test_precedence_mul_add;
          Alcotest.test_case "shift/cmp precedence" `Quick test_precedence_shift_cmp;
          Alcotest.test_case "band/eq precedence" `Quick test_precedence_band_cmp;
          Alcotest.test_case "missing semicolon" `Quick test_parse_error_missing_semi;
          Alcotest.test_case "else if" `Quick test_parse_else_if;
          Alcotest.test_case "array initializer" `Quick test_array_initializer;
          Alcotest.test_case "trailing comma" `Quick test_trailing_comma_initializer;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "type mismatch" `Quick test_type_mismatch;
          Alcotest.test_case "word/int no mix" `Quick test_word_int_no_mix;
          Alcotest.test_case "unbound var" `Quick test_unbound_var;
          Alcotest.test_case "break outside loop" `Quick test_break_outside_loop;
          Alcotest.test_case "continue outside loop" `Quick test_continue_outside_loop;
          Alcotest.test_case "missing return" `Quick test_missing_return;
          Alcotest.test_case "return both branches" `Quick test_return_both_branches_ok;
          Alcotest.test_case "duplicate toplevel" `Quick test_duplicate_toplevel;
          Alcotest.test_case "duplicate local" `Quick test_duplicate_local_same_scope;
          Alcotest.test_case "shadowing ok" `Quick test_shadowing_in_nested_scope_ok;
          Alcotest.test_case "void in expression" `Quick test_void_in_expression;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "array without subscript" `Quick test_array_without_subscript;
          Alcotest.test_case "subscript type" `Quick test_subscript_must_be_int;
          Alcotest.test_case "shared no init" `Quick test_shared_array_no_init;
          Alcotest.test_case "word literal range" `Quick test_word_literal_range;
          Alcotest.test_case "condition bool" `Quick test_condition_must_be_bool;
          Alcotest.test_case "assign mismatch" `Quick test_assign_type_mismatch;
        ] );
      ( "interp",
        [
          Alcotest.test_case "factorial" `Quick test_factorial_recursive;
          Alcotest.test_case "fibonacci" `Quick test_fib_loop;
          Alcotest.test_case "gcd" `Quick test_gcd_while;
          Alcotest.test_case "word wraparound" `Quick test_word_wraparound;
          Alcotest.test_case "word mul" `Quick test_word_mul_mod32;
          Alcotest.test_case "word rotation" `Quick test_word_rotation_idiom;
          Alcotest.test_case "word shr logical" `Quick test_word_shr_logical;
          Alcotest.test_case "int shr arithmetic" `Quick test_int_shr_arithmetic;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "continue runs step" `Quick test_continue_runs_for_step;
          Alcotest.test_case "nested loops" `Quick test_nested_loops_break_inner;
          Alcotest.test_case "globals persist" `Quick test_globals_persist;
          Alcotest.test_case "const fold global" `Quick test_global_word_init_folded;
          Alcotest.test_case "short-circuit &&" `Quick test_short_circuit_and;
          Alcotest.test_case "short-circuit ||" `Quick test_short_circuit_or;
          Alcotest.test_case "bool ops" `Quick test_bool_ops;
        ] );
      ( "programs",
        [
          Alcotest.test_case "forward reference" `Quick test_forward_reference;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "nested calls" `Quick test_nested_calls_as_args;
          Alcotest.test_case "many params" `Quick test_many_params;
          Alcotest.test_case "word division" `Quick test_word_division;
          Alcotest.test_case "deep expression" `Quick test_deeply_nested_expression;
          Alcotest.test_case "void empty body" `Quick test_empty_function_body_void;
          Alcotest.test_case "comparison chain" `Quick test_comparison_chains_rejected;
        ] );
      ( "faults",
        [
          Alcotest.test_case "div by zero" `Quick test_fault_div_zero;
          Alcotest.test_case "mod by zero" `Quick test_fault_mod_zero;
          Alcotest.test_case "array oob" `Quick test_fault_array_oob;
          Alcotest.test_case "array negative" `Quick test_fault_array_negative;
          Alcotest.test_case "fuel exhaustion" `Quick test_fault_fuel;
          Alcotest.test_case "stack overflow" `Quick test_fault_stack_overflow;
          Alcotest.test_case "kernel survives" `Quick test_kernel_survives_fault;
        ] );
      ( "link",
        [
          Alcotest.test_case "shared array" `Quick test_shared_array_binding;
          Alcotest.test_case "RO window store faults" `Quick test_shared_array_readonly_store_faults;
          Alcotest.test_case "unbound shared" `Quick test_unbound_shared_array;
          Alcotest.test_case "window too small" `Quick test_window_too_small;
          Alcotest.test_case "extern host call" `Quick test_extern_host_call;
          Alcotest.test_case "missing extern" `Quick test_missing_extern;
          Alcotest.test_case "bad entry" `Quick test_bad_entry;
        ] );
      ("pretty", [ Alcotest.test_case "renders" `Quick test_pretty_output ]);
      ( "optimize",
        [
          Alcotest.test_case "constant folding" `Quick test_opt_constant_folding;
          Alcotest.test_case "dead branch" `Quick test_opt_dead_branch;
          Alcotest.test_case "dead while" `Quick test_opt_dead_while;
          Alcotest.test_case "identities" `Quick test_opt_identities;
          Alcotest.test_case "div fault preserved" `Quick test_opt_preserves_div_fault;
          Alcotest.test_case "impure mul zero" `Quick test_opt_preserves_impure_mul_zero;
          Alcotest.test_case "pure eval dropped" `Quick test_opt_drops_pure_eval;
          Alcotest.test_case "short-circuit consts" `Quick test_opt_short_circuit_consts;
        ] );
      ( "properties",
        qc [ prop_int_arith_matches_host; prop_word_arith_matches_wordops; prop_cmp_matches ] );
    ]
