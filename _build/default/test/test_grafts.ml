(* Tests for graft_grafts: access regimes, list layout, and the three
   paper grafts under every native access regime, differentially
   against reference implementations. *)

open Graft_grafts
open Graft_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---------- access regimes ---------- *)

let test_unsafe_no_checks () =
  let a = [| 1; 2; 3; 4 |] in
  check_int "get" 3 (Access.Unsafe.get a 2);
  Access.Unsafe.set a 1 9;
  check_int "set" 9 a.(1)

let test_checked_bounds () =
  let a = [| 1; 2 |] in
  check_bool "oob get faults" true
    (match Access.Checked.get a 5 with
    | exception Graft_mem.Fault.Fault (Graft_mem.Fault.Out_of_bounds _) -> true
    | _ -> false);
  check_bool "neg set faults" true
    (match Access.Checked.set a (-1) 0 with
    | exception Graft_mem.Fault.Fault (Graft_mem.Fault.Out_of_bounds _) -> true
    | _ -> false);
  let b = Bytes.of_string "xy" in
  check_bool "byte oob faults" true
    (match Access.Checked.get_byte b 2 with
    | exception Graft_mem.Fault.Fault (Graft_mem.Fault.Out_of_bounds _) -> true
    | _ -> false)

let test_checked_nil_behaves_like_checked () =
  let a = [| 5; 6; 7; 8 |] in
  check_int "get 0 fine" 5 (Access.Checked_nil.get a 0);
  check_bool "oob faults" true
    (match Access.Checked_nil.get a 4 with
    | exception Graft_mem.Fault.Fault _ -> true
    | _ -> false)

let test_sfi_confines () =
  (* Power-of-two array: a wild store must land inside, never escape. *)
  let a = Array.make 8 0 in
  Access.Sfi_wj.set a 1000 42;
  check_bool "landed inside" true (Array.exists (fun v -> v = 42) a);
  Access.Sfi_wj.set a (-3) 77;
  check_bool "negative confined" true (Array.exists (fun v -> v = 77) a);
  (* Full protection confines reads too. *)
  check_int "read confined" a.(1000 land 7) (Access.Sfi_full.get a 1000)

let test_sfi_wj_reads_unconfined () =
  (* Write+jump leaves reads raw: in-bounds reads work, that is all we
     can safely demonstrate on a host array. *)
  let a = [| 10; 20; 30; 40 |] in
  check_int "plain read" 30 (Access.Sfi_wj.get a 2)

let test_all_regimes_agree_in_bounds () =
  let r = Prng.create 31L in
  List.iter
    (fun (module A : Access.S) ->
      let a = Array.make 64 0 in
      for _ = 1 to 200 do
        let i = Prng.int r 64 in
        let v = Prng.int r 1000 in
        A.set a i v;
        if A.get a i <> v then
          Alcotest.failf "%s: roundtrip failed at %d" A.name i
      done)
    Access.all

(* ---------- list layout ---------- *)

let test_layout_chains () =
  let hot = [| 11; 22; 33 |] and lru = [| 44; 55 |] in
  let l = Listlayout.build ~cells_len:16 ~hot ~lru () in
  Alcotest.(check (list int)) "hot chain" [ 11; 22; 33 ]
    (Listlayout.pages_of_chain l.Listlayout.cells l.Listlayout.hot_head);
  Alcotest.(check (list int)) "lru chain" [ 44; 55 ]
    (Listlayout.pages_of_chain l.Listlayout.cells l.Listlayout.lru_head);
  check_int "cell 0 is NIL" 0 l.Listlayout.cells.(0)

let test_layout_shuffled_preserves_order () =
  let rng = Prng.create 5L in
  let hot = Array.init 64 (fun i -> 100 + i) in
  let lru = Array.init 32 (fun i -> 500 + i) in
  let l = Listlayout.build ~rng ~cells_len:(1 + (2 * 96)) ~hot ~lru () in
  Alcotest.(check (list int)) "hot order preserved" (Array.to_list hot)
    (Listlayout.pages_of_chain l.Listlayout.cells l.Listlayout.hot_head);
  Alcotest.(check (list int)) "lru order preserved" (Array.to_list lru)
    (Listlayout.pages_of_chain l.Listlayout.cells l.Listlayout.lru_head)

let test_layout_too_small () =
  check_bool "raises" true
    (match Listlayout.build ~cells_len:3 ~hot:[| 1; 2 |] ~lru:[||] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_layout_empty_lists () =
  let l = Listlayout.build ~cells_len:4 ~hot:[||] ~lru:[||] () in
  check_int "hot NIL" 0 l.Listlayout.hot_head;
  check_int "lru NIL" 0 l.Listlayout.lru_head

(* ---------- eviction graft ---------- *)

(* Reference membership/choice in plain OCaml over page arrays. *)
let ref_contains hot page = Array.exists (fun p -> p = page) hot

let ref_choose hot lru =
  match Array.find_opt (fun p -> not (ref_contains hot p)) lru with
  | Some p -> p
  | None -> if Array.length lru = 0 then -1 else lru.(0)

let evict_modules : (string * (module Access.S)) list =
  [
    ("unsafe", (module Access.Unsafe));
    ("checked", (module Access.Checked));
    ("checked-nil", (module Access.Checked_nil));
    ("sfi-wj", (module Access.Sfi_wj));
    ("sfi-full", (module Access.Sfi_full));
  ]

let test_evict_contains_all_regimes () =
  let rng = Prng.create 17L in
  let hot = Array.init 64 (fun i -> 3 * i) in
  let lru = Array.init 32 (fun i -> 1000 + i) in
  let layout =
    Listlayout.build ~rng ~cells_len:256 ~hot ~lru ()
  in
  List.iter
    (fun (name, (module A : Access.S)) ->
      let module E = Evict.Make (A) in
      for page = 0 to 200 do
        let expect = ref_contains hot page in
        let got =
          E.contains layout.Listlayout.cells ~head:layout.Listlayout.hot_head
            ~page
        in
        if got <> expect then Alcotest.failf "%s: contains(%d) wrong" name page
      done)
    evict_modules

let test_evict_choose_all_regimes () =
  let rng = Prng.create 23L in
  for trial = 1 to 20 do
    let nhot = Prng.int rng 10 and nlru = 1 + Prng.int rng 10 in
    let hot = Array.init nhot (fun _ -> Prng.int rng 20) in
    let lru = Array.init nlru (fun _ -> Prng.int rng 20) in
    let layout =
      Listlayout.build ~rng ~cells_len:128 ~hot ~lru ()
    in
    let expect = ref_choose hot lru in
    List.iter
      (fun (name, (module A : Access.S)) ->
        let module E = Evict.Make (A) in
        let got =
          E.choose_victim layout.Listlayout.cells
            ~lru_head:layout.Listlayout.lru_head
            ~hot_head:layout.Listlayout.hot_head
        in
        if got <> expect then
          Alcotest.failf "%s trial %d: choose got %d want %d" name trial got
            expect)
      evict_modules
  done

let test_evict_empty_lru () =
  let layout = Listlayout.build ~cells_len:8 ~hot:[| 1 |] ~lru:[||] () in
  check_int "empty lru" (-1)
    (Evict.Unsafe.choose_victim layout.Listlayout.cells
       ~lru_head:layout.Listlayout.lru_head
       ~hot_head:layout.Listlayout.hot_head)

let test_evict_all_hot_falls_back () =
  let layout =
    Listlayout.build ~cells_len:32 ~hot:[| 7; 8; 9 |] ~lru:[| 8; 9; 7 |] ()
  in
  check_int "falls back to candidate" 8
    (Evict.Checked.choose_victim layout.Listlayout.cells
       ~lru_head:layout.Listlayout.lru_head
       ~hot_head:layout.Listlayout.hot_head)

let prop_evict_matches_reference =
  QCheck.Test.make ~name:"eviction matches reference (all regimes)" ~count:100
    QCheck.(triple int64 (list_of_size Gen.(int_range 0 20) (int_range 0 50))
              (list_of_size Gen.(int_range 0 20) (int_range 0 50)))
    (fun (seed, hot_l, lru_l) ->
      let rng = Prng.create seed in
      let hot = Array.of_list hot_l and lru = Array.of_list lru_l in
      let layout = Listlayout.build ~rng ~cells_len:256 ~hot ~lru () in
      let expect = ref_choose hot lru in
      List.for_all
        (fun (_, (module A : Access.S)) ->
          let module E = Evict.Make (A) in
          E.choose_victim layout.Listlayout.cells
            ~lru_head:layout.Listlayout.lru_head
            ~hot_head:layout.Listlayout.hot_head
          = expect)
        evict_modules)

(* ---------- MD5 graft ---------- *)

let test_md5_graft_rfc_vectors () =
  (* Non-SFI regimes work at any size; check RFC vectors. *)
  List.iter
    (fun (input, expected) ->
      check_str
        (Printf.sprintf "md5(%S)" input)
        expected
        (Md5_graft.Unsafe.digest_hex (Bytes.of_string input));
      check_str "checked" expected
        (Md5_graft.Checked.digest_hex (Bytes.of_string input));
      check_str "checked-nil" expected
        (Md5_graft.Checked_nil.digest_hex (Bytes.of_string input)))
    [
      ("", "d41d8cd98f00b204e9800998ecf8427e");
      ("abc", "900150983cd24fb0d6963f7d28e17f72");
      ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ]

let test_md5_graft_all_regimes_pow2 () =
  (* Power-of-two buffers: every regime, including SFI, must agree with
     the kernel's reference MD5. *)
  let r = Prng.create 0xABCL in
  List.iter
    (fun size ->
      let data = Prng.bytes r size in
      let expect = Graft_md5.Md5.to_hex (Graft_md5.Md5.digest_bytes data) in
      check_str "unsafe" expect (Md5_graft.Unsafe.digest_hex data);
      check_str "checked" expect (Md5_graft.Checked.digest_hex data);
      check_str "checked-nil" expect (Md5_graft.Checked_nil.digest_hex data);
      check_str "sfi-wj" expect (Md5_graft.Sfi_wj.digest_hex data);
      check_str "sfi-full" expect (Md5_graft.Sfi_full.digest_hex data))
    [ 64; 256; 4096; 65536 ]

let prop_md5_graft_matches_reference =
  QCheck.Test.make ~name:"md5 graft matches reference md5" ~count:100
    QCheck.(string_of_size Gen.(int_range 0 512))
    (fun s ->
      let data = Bytes.of_string s in
      Md5_graft.Checked.digest_hex data
      = Graft_md5.Md5.to_hex (Graft_md5.Md5.digest_bytes data))

(* ---------- logical disk graft ---------- *)

let test_logdisk_graft_all_regimes () =
  let config = { Graft_kernel.Logdisk.nblocks = 1024; segment_blocks = 16 } in
  let r = Prng.create 88L in
  let workload = Array.init 500 (fun _ -> Prng.int r 1024) in
  let reference =
    Graft_kernel.Logdisk.run config
      (Graft_kernel.Logdisk.native_policy config)
      workload
  in
  List.iter
    (fun (name, (module A : Access.S)) ->
      let module L = Logdisk_graft.Make (A) in
      let result =
        Graft_kernel.Logdisk.run config (L.make_policy ~nblocks:1024 ())
          workload
      in
      if result.Graft_kernel.Logdisk.mapping_errors <> 0 then
        Alcotest.failf "%s: mapping errors" name;
      if
        result.Graft_kernel.Logdisk.segments_flushed
        <> reference.Graft_kernel.Logdisk.segments_flushed
      then Alcotest.failf "%s: segment count differs" name)
    evict_modules

(* ---------- GEL / script sources compile ---------- *)

let test_gel_sources_compile () =
  List.iter
    (fun src ->
      match Graft_gel.Gel.compile src with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "GEL source: %s" (Graft_gel.Srcloc.to_string e))
    [
      Gel_sources.evict ~heap_cells:256;
      Gel_sources.md5 ~data_cells:1024;
      Gel_sources.logdisk ~nblocks:128;
    ]

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_grafts"
    [
      ( "access",
        [
          Alcotest.test_case "unsafe" `Quick test_unsafe_no_checks;
          Alcotest.test_case "checked bounds" `Quick test_checked_bounds;
          Alcotest.test_case "checked-nil" `Quick test_checked_nil_behaves_like_checked;
          Alcotest.test_case "sfi confines" `Quick test_sfi_confines;
          Alcotest.test_case "sfi-wj reads" `Quick test_sfi_wj_reads_unconfined;
          Alcotest.test_case "regimes agree" `Quick test_all_regimes_agree_in_bounds;
        ] );
      ( "layout",
        [
          Alcotest.test_case "chains" `Quick test_layout_chains;
          Alcotest.test_case "shuffled order" `Quick test_layout_shuffled_preserves_order;
          Alcotest.test_case "too small" `Quick test_layout_too_small;
          Alcotest.test_case "empty lists" `Quick test_layout_empty_lists;
        ] );
      ( "evict",
        [
          Alcotest.test_case "contains all regimes" `Quick test_evict_contains_all_regimes;
          Alcotest.test_case "choose all regimes" `Quick test_evict_choose_all_regimes;
          Alcotest.test_case "empty lru" `Quick test_evict_empty_lru;
          Alcotest.test_case "all hot" `Quick test_evict_all_hot_falls_back;
        ]
        @ qc [ prop_evict_matches_reference ] );
      ( "md5",
        [
          Alcotest.test_case "RFC vectors" `Quick test_md5_graft_rfc_vectors;
          Alcotest.test_case "all regimes pow2" `Quick test_md5_graft_all_regimes_pow2;
        ]
        @ qc [ prop_md5_graft_matches_reference ] );
      ( "logdisk",
        [ Alcotest.test_case "all regimes" `Quick test_logdisk_graft_all_regimes ] );
      ( "sources",
        [ Alcotest.test_case "GEL compiles" `Quick test_gel_sources_compile ] );
    ]
