(* Tests for graft_workload: TPC-B b-tree model, skew generators, file
   data. *)

open Graft_workload
open Graft_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_tpcb_shape () =
  let db = Tpcb.create () in
  check_int "root" 0 db.Tpcb.root;
  check_int "l2 pages" 4 (Array.length db.Tpcb.l2);
  check_int "l3 pages" 391 (Array.length db.Tpcb.l3);
  check_int "children per l3" 128 (Array.length db.Tpcb.l4_children.(0));
  (* ~50,000 data pages, paper section 3.1. *)
  check_int "total pages" (5 + 391 + (391 * 128)) db.Tpcb.npages;
  check_bool "about 50k data pages" true
    (let data = 391 * 128 in
     data > 49_000 && data < 51_000)

let test_tpcb_pages_distinct () =
  let db = Tpcb.create ~l3_pages:10 ~children_per_l3:8 () in
  let all = ref [] in
  all := db.Tpcb.root :: !all;
  Array.iter (fun p -> all := p :: !all) db.Tpcb.l2;
  Array.iter (fun p -> all := p :: !all) db.Tpcb.l3;
  Array.iter (Array.iter (fun p -> all := p :: !all)) db.Tpcb.l4_children;
  let n = List.length !all in
  check_int "all distinct" n (List.length (List.sort_uniq compare !all))

let test_tpcb_lookup_path () =
  let db = Tpcb.create () in
  let path = Tpcb.lookup_path db ~l3_index:7 ~child_index:3 in
  check_int "path length" 4 (Array.length path);
  check_int "starts at root" 0 path.(0);
  check_int "l3 page" db.Tpcb.l3.(7) path.(2);
  check_int "l4 page" db.Tpcb.l4_children.(7).(3) path.(3);
  check_bool "bad index raises" true
    (match Tpcb.lookup_path db ~l3_index:9999 ~child_index:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tpcb_random_lookup () =
  let db = Tpcb.create () in
  let rng = Prng.create 42L in
  for _ = 1 to 100 do
    let path, hot = Tpcb.random_lookup rng db in
    check_int "path" 4 (Array.length path);
    check_int "hot list is the 128 children" 128 (Array.length hot);
    (* The looked-up data page is on the published hot list. *)
    check_bool "l4 on hot list" true (Array.mem path.(3) hot)
  done

let test_tpcb_scan_subtree () =
  let db = Tpcb.create () in
  let refs, hot = Tpcb.scan_subtree db ~l3_index:0 in
  check_int "refs = l3 + children" 129 (Array.length refs);
  check_int "hot = children" 128 (Array.length hot);
  check_int "first ref is the l3 page" db.Tpcb.l3.(0) refs.(0)

let test_tpcb_hit_probability () =
  let db = Tpcb.create () in
  let p = Tpcb.hit_probability db ~avg_hot:64 in
  (* Paper: roughly 64/50,000 = once every 781 times. *)
  check_bool "about 1/781" true (1.0 /. p > 700.0 && 1.0 /. p < 900.0)

let test_skew_eighty_twenty () =
  let rng = Prng.create 7L in
  let n = 10_000 in
  let gen = Skew.eighty_twenty rng ~n in
  let w = Skew.workload gen 50_000 in
  let hot_boundary = n / 5 in
  let hot_hits = Array.fold_left (fun acc b -> if b < hot_boundary then acc + 1 else acc) 0 w in
  let frac = float_of_int hot_hits /. 50_000.0 in
  check_bool "80% to hot 20%" true (frac > 0.77 && frac < 0.83);
  Array.iter (fun b -> if b < 0 || b >= n then Alcotest.fail "out of range") w

let test_zipf_skewed () =
  let rng = Prng.create 11L in
  let gen = Skew.zipf rng ~n:100 ~s:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = gen () in
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "rank 0 most popular" true (counts.(0) > counts.(10));
  check_bool "rank 10 beats rank 90" true (counts.(10) > counts.(90))

let test_filedata () =
  let rng = Prng.create 3L in
  let r = Filedata.random rng 10_000 in
  let c = Filedata.compressible rng 10_000 in
  let e = Filedata.executable_like rng 10_000 in
  check_int "random size" 10_000 (Bytes.length r);
  check_int "compressible size" 10_000 (Bytes.length c);
  check_int "exe size" 10_000 (Bytes.length e);
  (* Compressible data has far fewer distinct adjacent pairs. *)
  let runs buf =
    let count = ref 1 in
    for i = 1 to Bytes.length buf - 1 do
      if Bytes.get buf i <> Bytes.get buf (i - 1) then incr count
    done;
    !count
  in
  check_bool "compressible has long runs" true (runs c * 5 < runs r)

let prop_skew_in_range =
  QCheck.Test.make ~name:"hot_cold stays in range" ~count:100
    QCheck.(pair int64 (int_range 2 10_000))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let gen = Skew.hot_cold rng ~n ~hot_fraction:0.2 ~hot_weight:0.8 in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = gen () in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_workload"
    [
      ( "tpcb",
        [
          Alcotest.test_case "shape" `Quick test_tpcb_shape;
          Alcotest.test_case "pages distinct" `Quick test_tpcb_pages_distinct;
          Alcotest.test_case "lookup path" `Quick test_tpcb_lookup_path;
          Alcotest.test_case "random lookup" `Quick test_tpcb_random_lookup;
          Alcotest.test_case "scan subtree" `Quick test_tpcb_scan_subtree;
          Alcotest.test_case "hit probability" `Quick test_tpcb_hit_probability;
        ] );
      ( "skew",
        [
          Alcotest.test_case "80/20" `Quick test_skew_eighty_twenty;
          Alcotest.test_case "zipf" `Quick test_zipf_skewed;
        ]
        @ qc [ prop_skew_in_range ] );
      ("filedata", [ Alcotest.test_case "generators" `Quick test_filedata ]);
    ]
