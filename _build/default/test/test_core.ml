(* Tests for graft_core: technology metadata, runners across every
   technology (differential against references), the graft manager's
   containment behaviour, and the break-even analysis. *)

open Graft_core
open Graft_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Technologies with wall-clock runners (all but Upcall_server). *)
let runner_techs =
  List.filter
    (fun t ->
      t <> Technology.Upcall_server && t <> Technology.Specialized_vm)
    Technology.all

(* ---------- technology ---------- *)

let test_technology_names_unique () =
  let names = List.map Technology.name Technology.all in
  check_int "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_technology_roundtrip () =
  List.iter
    (fun t ->
      match Technology.of_name (Technology.name t) with
      | Some t' when t = t' -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Technology.name t))
    Technology.all

let test_trust_models () =
  check_bool "unsafe can crash" true (Technology.can_crash_kernel Technology.Unsafe_c);
  List.iter
    (fun t ->
      if t <> Technology.Unsafe_c then
        check_bool
          (Technology.name t ^ " contained")
          false
          (Technology.can_crash_kernel t))
    Technology.all

let test_paper_columns () =
  check_int "five columns" 5 (List.length Technology.paper_columns)

(* ---------- evict runners across technologies ---------- *)

let ref_contains hot page = Array.exists (fun p -> p = page) hot

let ref_choose hot lru =
  match Array.find_opt (fun p -> not (ref_contains hot p)) lru with
  | Some p -> p
  | None -> if Array.length lru = 0 then -1 else lru.(0)

let test_evict_runners_agree () =
  let rng = Prng.create 0xE1FL in
  let hot = Array.init 64 (fun i -> 2 * i) in
  let lru = Array.init 16 (fun i -> 200 + i) in
  List.iter
    (fun tech ->
      let runner = Runners.evict ~rng tech ~capacity_nodes:128 () in
      runner.Runners.refresh ~hot ~lru;
      for page = 0 to 130 do
        if runner.Runners.contains page <> ref_contains hot page then
          Alcotest.failf "%s: contains(%d) wrong" (Technology.name tech) page
      done;
      check_int (Technology.name tech ^ " choose") (ref_choose hot lru)
        (runner.Runners.choose ()))
    runner_techs

let test_evict_runner_refresh_replaces () =
  let runner = Runners.evict Technology.Bytecode_vm ~capacity_nodes:16 () in
  runner.Runners.refresh ~hot:[| 1; 2 |] ~lru:[| 3 |];
  check_bool "first layout" true (runner.Runners.contains 1);
  runner.Runners.refresh ~hot:[| 9 |] ~lru:[| 3 |];
  check_bool "old entry gone" false (runner.Runners.contains 1);
  check_bool "new entry" true (runner.Runners.contains 9)

let test_evict_runner_capacity () =
  let runner = Runners.evict Technology.Unsafe_c ~capacity_nodes:4 () in
  check_bool "raises" true
    (match runner.Runners.refresh ~hot:(Array.make 3 0) ~lru:(Array.make 3 0) with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_evict_upcall_rejected () =
  check_bool "raises" true
    (match Runners.evict Technology.Upcall_server ~capacity_nodes:4 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_evict_regvm_ablation () =
  let rng = Prng.create 3L in
  let hot = Array.init 8 (fun i -> i * 5) in
  let refresh_u, contains_u =
    Runners.evict_regvm ~rng ~protection:Graft_regvm.Program.Unprotected
      ~capacity_nodes:32 ()
  in
  let refresh_w, contains_w =
    Runners.evict_regvm ~rng:(Prng.create 3L)
      ~protection:Graft_regvm.Program.Write_jump ~capacity_nodes:32 ()
  in
  refresh_u ~hot ~lru:[||];
  refresh_w ~hot ~lru:[||];
  let m_u, i_u = contains_u 10 in
  let m_w, i_w = contains_w 10 in
  check_bool "same result" true (m_u = m_w);
  (* This graft only reads, so write+jump adds no per-node cost. *)
  check_bool "icount comparable" true (i_w >= i_u)

let test_evict_upcall_runner () =
  let clock = Graft_kernel.Simclock.create () in
  let domain =
    Graft_kernel.Upcall.create ~name:"evictsrv" ~clock ~switch_s:10e-6 ()
  in
  let runner = Runners.evict_upcall ~domain ~capacity_nodes:64 () in
  let hot = [| 1; 2; 3 |] and lru = [| 2; 9 |] in
  runner.Runners.refresh ~hot ~lru;
  check_bool "contains" true (runner.Runners.contains 2);
  check_bool "absent" false (runner.Runners.contains 7);
  check_int "choose" 9 (runner.Runners.choose ());
  check_int "three upcalls" 3 domain.Graft_kernel.Upcall.upcalls;
  (* Each upcall costs at least two domain switches. *)
  check_bool "boundary cost charged" true
    (Graft_kernel.Simclock.now clock >= 3.0 *. 2.0 *. 10e-6)

(* ---------- md5 runners across technologies ---------- *)

let test_md5_runners_agree () =
  let r = Prng.create 0x3D5L in
  let capacity = 256 in
  let data = Prng.bytes r capacity in
  let expect = Graft_md5.Md5.to_hex (Graft_md5.Md5.digest_bytes data) in
  List.iter
    (fun tech ->
      let runner = Runners.md5 tech ~capacity in
      runner.Runners.load data;
      runner.Runners.compute capacity;
      check_str (Technology.name tech) expect (runner.Runners.digest_hex ()))
    runner_techs

let test_md5_runner_partial_length () =
  let r = Prng.create 0x3D6L in
  let capacity = 512 in
  let data = Prng.bytes r capacity in
  let n = 100 in
  let expect =
    Graft_md5.Md5.to_hex (Graft_md5.Md5.digest_bytes (Bytes.sub data 0 n))
  in
  List.iter
    (fun tech ->
      let runner = Runners.md5 tech ~capacity in
      runner.Runners.load data;
      runner.Runners.compute n;
      check_str (Technology.name tech) expect (runner.Runners.digest_hex ()))
    (* SFI regimes require pow2 sizes; partial lengths tested on the
       others. *)
    [
      Technology.Unsafe_c; Technology.Safe_lang; Technology.Safe_lang_nil;
      Technology.Bytecode_vm; Technology.Ast_interp; Technology.Source_interp;
    ]

(* ---------- logdisk runners across technologies ---------- *)

let test_logdisk_runners_agree () =
  let config = { Graft_kernel.Logdisk.nblocks = 512; segment_blocks = 16 } in
  let r = Prng.create 0x10D1L in
  let workload = Array.init 300 (fun _ -> Prng.int r 512) in
  let reference =
    Graft_kernel.Logdisk.run config
      (Graft_kernel.Logdisk.native_policy config)
      workload
  in
  List.iter
    (fun tech ->
      let policy = Runners.logdisk_policy tech ~nblocks:512 in
      let result = Graft_kernel.Logdisk.run config policy workload in
      if result.Graft_kernel.Logdisk.mapping_errors <> 0 then
        Alcotest.failf "%s: mapping errors" (Technology.name tech);
      check_int
        (Technology.name tech ^ " segments")
        reference.Graft_kernel.Logdisk.segments_flushed
        result.Graft_kernel.Logdisk.segments_flushed)
    runner_techs

(* ---------- manager ---------- *)

let test_manager_register_and_find () =
  let m = Manager.create () in
  let g =
    Manager.register m ~name:"evict1" ~tech:Technology.Safe_lang
      ~structure:Taxonomy.Prioritization ~motivation:Taxonomy.Policy ()
  in
  check_bool "found" true (Manager.find m "evict1" = Some g);
  check_bool "duplicate rejected" true
    (match
       Manager.register m ~name:"evict1" ~tech:Technology.Unsafe_c
         ~structure:Taxonomy.Prioritization ~motivation:Taxonomy.Policy ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_manager_evict_integration () =
  (* A safe-language eviction graft attached to a live VM subsystem
     protects the app's hot pages. *)
  let m = Manager.create () in
  ignore
    (Manager.register m ~name:"hotlist" ~tech:Technology.Safe_lang
       ~structure:Taxonomy.Prioritization ~motivation:Taxonomy.Policy ());
  let vm = Graft_kernel.Vmsys.create { Graft_kernel.Vmsys.nframes = 3; npages = 64; pages_per_fault = 1 } in
  let runner = Runners.evict Technology.Safe_lang ~capacity_nodes:64 () in
  (* The app's hot list: page 1 must never be evicted. *)
  Manager.attach_evict m ~graft_name:"hotlist" vm runner
    ~hot_pages:(fun () -> [| 1 |]);
  ignore (Graft_kernel.Vmsys.access vm 1);
  ignore (Graft_kernel.Vmsys.access vm 2);
  ignore (Graft_kernel.Vmsys.access vm 3);
  (* Page 1 is LRU; without the graft it would be evicted now. *)
  ignore (Graft_kernel.Vmsys.access vm 4);
  check_bool "hot page protected" true (Graft_kernel.Vmsys.resident vm 1);
  check_bool "page 2 evicted instead" false (Graft_kernel.Vmsys.resident vm 2);
  let s = Graft_kernel.Vmsys.stats vm in
  check_int "override recorded" 1 s.Graft_kernel.Vmsys.hook_overrides

let test_manager_disables_faulty_graft () =
  let m = Manager.create () in
  ignore
    (Manager.register m ~name:"bad" ~tech:Technology.Bytecode_vm
       ~structure:Taxonomy.Prioritization ~motivation:Taxonomy.Policy
       ~max_faults:2 ());
  let vm = Graft_kernel.Vmsys.create { Graft_kernel.Vmsys.nframes = 2; npages = 16; pages_per_fault = 1 } in
  (* A runner whose choose always faults. *)
  let runner =
    {
      Runners.e_tech = Technology.Bytecode_vm;
      refresh = (fun ~hot:_ ~lru:_ -> ());
      contains = (fun _ -> false);
      choose =
        (fun () ->
          Graft_mem.Fault.raise_fault Graft_mem.Fault.Fuel_exhausted);
    }
  in
  Manager.attach_evict m ~graft_name:"bad" vm runner ~hot_pages:(fun () -> [||]);
  ignore (Graft_kernel.Vmsys.access vm 1);
  ignore (Graft_kernel.Vmsys.access vm 2);
  (* Each of these evictions invokes the faulting graft; the kernel
     survives every one and falls back to LRU. *)
  ignore (Graft_kernel.Vmsys.access vm 3);
  ignore (Graft_kernel.Vmsys.access vm 4);
  ignore (Graft_kernel.Vmsys.access vm 5);
  let g = Option.get (Manager.find m "bad") in
  check_int "faults recorded" 2 g.Manager.faults;
  (match g.Manager.state with
  | Manager.Disabled _ -> ()
  | s -> Alcotest.failf "expected disabled, got %s" (Manager.state_name s));
  check_bool "kernel still consistent" true (Graft_kernel.Vmsys.invariant_ok vm)

let test_manager_unsafe_fault_panics () =
  let m = Manager.create () in
  ignore
    (Manager.register m ~name:"wild" ~tech:Technology.Unsafe_c
       ~structure:Taxonomy.Prioritization ~motivation:Taxonomy.Policy ());
  let vm = Graft_kernel.Vmsys.create { Graft_kernel.Vmsys.nframes = 2; npages = 16; pages_per_fault = 1 } in
  let runner =
    {
      Runners.e_tech = Technology.Unsafe_c;
      refresh = (fun ~hot:_ ~lru:_ -> ());
      contains = (fun _ -> false);
      choose =
        (fun () ->
          Graft_mem.Fault.raise_fault
            (Graft_mem.Fault.Out_of_bounds
               { access = Graft_mem.Fault.Write; addr = 0xDEAD }));
    }
  in
  Manager.attach_evict m ~graft_name:"wild" vm runner ~hot_pages:(fun () -> [||]);
  ignore (Graft_kernel.Vmsys.access vm 1);
  ignore (Graft_kernel.Vmsys.access vm 2);
  check_bool "panics" true
    (match Graft_kernel.Vmsys.access vm 3 with
    | exception Manager.Kernel_panic _ -> true
    | _ -> false)

let test_manager_md5_filter () =
  let m = Manager.create () in
  ignore
    (Manager.register m ~name:"fingerprint" ~tech:Technology.Safe_lang
       ~structure:Taxonomy.Stream ~motivation:Taxonomy.Functionality ());
  let runner = Runners.md5 Technology.Safe_lang ~capacity:4096 in
  let filter, get_digest =
    Manager.attach_md5_filter m ~graft_name:"fingerprint" runner ~capacity:4096
  in
  let sink_data = Buffer.create 256 in
  let chain =
    Graft_kernel.Streams.build [ filter ]
      ~sink:(fun chunk -> Buffer.add_bytes sink_data chunk)
  in
  let data = Bytes.of_string (String.init 1000 (fun i -> Char.chr (i mod 256))) in
  Graft_kernel.Streams.push chain data;
  Graft_kernel.Streams.finish chain;
  check_str "pass-through" (Bytes.to_string data) (Buffer.contents sink_data);
  match get_digest () with
  | Some d ->
      check_str "digest" (Graft_md5.Md5.to_hex (Graft_md5.Md5.digest_bytes data)) d
  | None -> Alcotest.fail "no digest"

let test_manager_logdisk_wrap () =
  let m = Manager.create () in
  ignore
    (Manager.register m ~name:"lsd" ~tech:Technology.Safe_lang
       ~structure:Taxonomy.Black_box ~motivation:Taxonomy.Performance ());
  let policy = Runners.logdisk_policy Technology.Safe_lang ~nblocks:256 in
  let wrapped = Manager.attach_logdisk m ~graft_name:"lsd" policy in
  let config = { Graft_kernel.Logdisk.nblocks = 256; segment_blocks = 16 } in
  let r = Prng.create 1L in
  let workload = Array.init 100 (fun _ -> Prng.int r 256) in
  let result = Graft_kernel.Logdisk.run config wrapped workload in
  check_int "no errors" 0 result.Graft_kernel.Logdisk.mapping_errors;
  let g = Option.get (Manager.find m "lsd") in
  check_bool "invocations counted" true (g.Manager.invocations > 100)

(* ---------- breakeven ---------- *)

let test_breakeven_math () =
  check_bool "break even" true
    (Float.abs (Breakeven.break_even ~event_cost_s:6.9e-3 ~graft_cost_s:4.5e-6 -. 1533.3) < 1.0);
  check_bool "zero graft" true
    (Breakeven.break_even ~event_cost_s:1.0 ~graft_cost_s:0.0 = infinity);
  check_bool "normalized" true
    (Float.abs (Breakeven.normalized ~baseline_s:2.0 ~t_s:3.0 -. 1.5) < 1e-9)

let test_breakeven_worthwhile () =
  (* Paper: Solaris Modula-3 break-even 1095 > 781 -> worthwhile;
     Java 49 < 781 -> not. *)
  check_bool "modula-3 helps" true
    (Breakeven.worthwhile ~break_even:1095.0 ~save_period:Breakeven.paper_save_period);
  check_bool "java hurts" false
    (Breakeven.worthwhile ~break_even:49.0 ~save_period:Breakeven.paper_save_period)

let test_breakeven_upcall_sweep () =
  let sweep =
    Breakeven.upcall_sweep ~event_cost_s:6.9e-3 ~native_graft_s:4.5e-6
      ~upcall_times_s:[ 0.0; 10e-6; 50e-6 ]
  in
  (match sweep with
  | [ (_, b0); (_, b10); (_, b50) ] ->
      check_bool "monotone" true (b0 > b10 && b10 > b50);
      (* At zero upcall time the server equals in-kernel C. *)
      check_bool "b0 = C break-even" true (Float.abs (b0 -. (6.9e-3 /. 4.5e-6)) < 1.0)
  | _ -> Alcotest.fail "sweep length");
  (* Competitive upcall time to match Modula-3 at 6.3us given C at
     4.5us: 1.8us. *)
  check_bool "competitive upcall" true
    (Float.abs
       (Breakeven.competitive_upcall_s ~in_kernel_s:6.3e-6 ~native_graft_s:4.5e-6
       -. 1.8e-6)
    < 1e-12)

let test_breakeven_extrapolate () =
  check_bool "linear" true
    (Float.abs
       (Breakeven.extrapolate ~measured_s:0.5 ~measured_size:1000 ~full_size:4000
       -. 2.0)
    < 1e-9)

let test_taxonomy_names () =
  check_str "prioritization" "VM page eviction"
    (Taxonomy.representative Taxonomy.Prioritization);
  check_str "stream" "MD5 fingerprinting" (Taxonomy.representative Taxonomy.Stream);
  check_str "black box" "Logical Disk" (Taxonomy.representative Taxonomy.Black_box)

let () =
  Alcotest.run "graft_core"
    [
      ( "technology",
        [
          Alcotest.test_case "names unique" `Quick test_technology_names_unique;
          Alcotest.test_case "roundtrip" `Quick test_technology_roundtrip;
          Alcotest.test_case "trust models" `Quick test_trust_models;
          Alcotest.test_case "paper columns" `Quick test_paper_columns;
        ] );
      ( "evict runners",
        [
          Alcotest.test_case "all agree" `Quick test_evict_runners_agree;
          Alcotest.test_case "refresh replaces" `Quick test_evict_runner_refresh_replaces;
          Alcotest.test_case "capacity" `Quick test_evict_runner_capacity;
          Alcotest.test_case "upcall rejected" `Quick test_evict_upcall_rejected;
          Alcotest.test_case "regvm ablation" `Quick test_evict_regvm_ablation;
          Alcotest.test_case "upcall runner" `Quick test_evict_upcall_runner;
        ] );
      ( "md5 runners",
        [
          Alcotest.test_case "all agree" `Quick test_md5_runners_agree;
          Alcotest.test_case "partial length" `Quick test_md5_runner_partial_length;
        ] );
      ( "logdisk runners",
        [ Alcotest.test_case "all agree" `Quick test_logdisk_runners_agree ] );
      ( "manager",
        [
          Alcotest.test_case "register/find" `Quick test_manager_register_and_find;
          Alcotest.test_case "evict integration" `Quick test_manager_evict_integration;
          Alcotest.test_case "disables faulty" `Quick test_manager_disables_faulty_graft;
          Alcotest.test_case "unsafe panics" `Quick test_manager_unsafe_fault_panics;
          Alcotest.test_case "md5 filter" `Quick test_manager_md5_filter;
          Alcotest.test_case "logdisk wrap" `Quick test_manager_logdisk_wrap;
        ] );
      ( "breakeven",
        [
          Alcotest.test_case "math" `Quick test_breakeven_math;
          Alcotest.test_case "worthwhile" `Quick test_breakeven_worthwhile;
          Alcotest.test_case "upcall sweep" `Quick test_breakeven_upcall_sweep;
          Alcotest.test_case "extrapolate" `Quick test_breakeven_extrapolate;
          Alcotest.test_case "taxonomy" `Quick test_taxonomy_names;
        ] );
    ]
