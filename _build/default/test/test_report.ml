(* Tests for graft_report: paper data sanity and the experiment driver
   (smoke runs at tiny scale — shape and invariants, not wall time). *)

open Graft_report

let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---------- paper data ---------- *)

let test_paperdata_platforms () =
  Alcotest.(check int) "table1" 4 (List.length Paperdata.table1_signal_s);
  Alcotest.(check int) "table2" 4 (List.length Paperdata.table2_search);
  Alcotest.(check int) "table5" 4 (List.length Paperdata.table5_md5);
  Alcotest.(check int) "table6" 4 (List.length Paperdata.table6_logdisk)

let test_paperdata_known_factors () =
  (* Paper's normalized factors: Solaris Java = 31.3x on Table 2. *)
  let solaris =
    List.find (fun r -> r.Paperdata.platform = "Solaris") Paperdata.table2_search
  in
  (match Paperdata.normalized solaris.Paperdata.c_s solaris.Paperdata.java_s with
  | Some f -> check_bool "java 31x" true (f > 30.0 && f < 33.0)
  | None -> Alcotest.fail "missing data");
  (match Paperdata.normalized solaris.Paperdata.c_s solaris.Paperdata.m3_s with
  | Some f -> check_bool "m3 1.4x" true (f > 1.3 && f < 1.5)
  | None -> Alcotest.fail "missing data");
  (* Tcl four orders of magnitude. *)
  let tcl_factor = Paperdata.table2_tcl_solaris_s /. 4.5e-6 in
  check_bool "tcl ~4 orders" true (tcl_factor > 5000.0)

(* ---------- experiment driver (smoke) ---------- *)

let test_table2_smoke () =
  let t = Experiments.table2 Experiments.Quick in
  let s = Experiments.render t in
  check_bool "has C row" true (contains s "| C ");
  check_bool "has Modula-3 row" true (contains s "Modula-3");
  check_bool "has Tcl row" true (contains s "Tcl");
  check_bool "has break-even columns" true (contains s "BE Solaris")

let test_table2_ordering () =
  (* The paper's qualitative result must reproduce: compiled ~ C,
     bytecode 10-100x, source interpreter far beyond. *)
  let data = Experiments.table2_data Experiments.Quick in
  let find tech =
    (List.find (fun d -> d.Experiments.tt_tech = tech) data).Experiments.full_s
  in
  let open Graft_core in
  let c = find Technology.Unsafe_c in
  let m3 = find Technology.Safe_lang in
  let sfi = find Technology.Sfi_write_jump in
  let java = find Technology.Bytecode_vm in
  let tcl = find Technology.Source_interp in
  check_bool "m3 within 3x of C" true (m3 < 3.0 *. c);
  check_bool "sfi within 3x of C" true (sfi < 3.0 *. c);
  check_bool "bytecode at least 5x C" true (java > 5.0 *. c);
  check_bool "tcl at least 10x bytecode" true (tcl > 10.0 *. java);
  check_bool "tcl at least 100x C" true (tcl > 100.0 *. c)

let test_figure1_smoke () =
  let t = Experiments.figure1 Experiments.Quick in
  let s = Experiments.render t in
  check_bool "plot present" true (contains s "upcall time");
  check_bool "legend" true (contains s "user-level server")

let test_ablation_regvm () =
  let t = Experiments.ablation_regvm () in
  let s = Experiments.render t in
  check_bool "rows" true (contains s "write+jump");
  check_bool "overhead col" true (contains s "%")

let test_ablation_upcall () =
  let t = Experiments.ablation_upcall () in
  let s = Experiments.render t in
  check_bool "has 64KB row" true (contains s "64KB");
  check_bool "has upcalls" true (contains s "16")

let () =
  Alcotest.run "graft_report"
    [
      ( "paperdata",
        [
          Alcotest.test_case "platforms" `Quick test_paperdata_platforms;
          Alcotest.test_case "known factors" `Quick test_paperdata_known_factors;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table2 smoke" `Slow test_table2_smoke;
          Alcotest.test_case "table2 ordering" `Slow test_table2_ordering;
          Alcotest.test_case "figure1 smoke" `Slow test_figure1_smoke;
          Alcotest.test_case "ablation regvm" `Quick test_ablation_regvm;
          Alcotest.test_case "ablation upcall" `Quick test_ablation_upcall;
        ] );
    ]
