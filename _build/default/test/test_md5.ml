(* Tests for graft_md5 against the RFC 1321 test suite plus incremental
   and property checks. *)

open Graft_md5
open Graft_util

(* RFC 1321 appendix A.5 test vectors. *)
let rfc_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let test_rfc_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "md5(%S)" input)
        expected (Md5.digest_hex input))
    rfc_vectors

let test_incremental_matches_oneshot () =
  let data = Bytes.of_string (String.init 1000 (fun i -> Char.chr (i mod 256))) in
  let oneshot = Md5.digest_bytes data in
  (* Feed in awkward chunk sizes crossing the 64-byte block boundary. *)
  List.iter
    (fun chunk ->
      let ctx = Md5.init () in
      let pos = ref 0 in
      while !pos < Bytes.length data do
        let n = min chunk (Bytes.length data - !pos) in
        Md5.update ctx data !pos n;
        pos := !pos + n
      done;
      Alcotest.(check string)
        (Printf.sprintf "chunk=%d" chunk)
        (Md5.to_hex oneshot)
        (Md5.to_hex (Md5.final ctx)))
    [ 1; 3; 63; 64; 65; 128; 1000 ]

let test_block_boundary_lengths () =
  (* Lengths around the 55/56/64 padding boundaries must all work. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let d = Md5.digest_hex s in
      Alcotest.(check int) "hex length" 32 (String.length d))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]

let test_update_bad_range () =
  let ctx = Md5.init () in
  let buf = Bytes.create 10 in
  Alcotest.check_raises "bad range" (Invalid_argument "Md5.update: bad range")
    (fun () -> Md5.update ctx buf 5 10)

let test_million_a () =
  (* Classic extended vector: one million 'a's. *)
  let chunk = Bytes.make 10_000 'a' in
  let ctx = Md5.init () in
  for _ = 1 to 100 do
    Md5.update ctx chunk 0 10_000
  done;
  Alcotest.(check string) "million a" "7707d6ae4e027c70eea2a935c2296f21"
    (Md5.to_hex (Md5.final ctx))

let test_to_hex () =
  Alcotest.(check string) "hex" "00ff10" (Md5.to_hex "\x00\xff\x10")

let prop_digest_is_16_bytes =
  QCheck.Test.make ~name:"digest always 16 bytes" ~count:200
    QCheck.string (fun s -> String.length (Md5.digest_string s) = 16)

let prop_deterministic =
  QCheck.Test.make ~name:"digest deterministic" ~count:200 QCheck.string
    (fun s -> Md5.digest_string s = Md5.digest_string s)

let prop_injective_smoke =
  (* Not a real injectivity test, but distinct short strings should not
     collide. *)
  QCheck.Test.make ~name:"distinct inputs distinct digests (smoke)"
    ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 0 64)) (string_of_size Gen.(int_range 0 64)))
    (fun (a, b) -> a = b || Md5.digest_string a <> Md5.digest_string b)

let prop_split_point_irrelevant =
  QCheck.Test.make ~name:"any split point gives same digest" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 0 300)) small_nat)
    (fun (s, k) ->
      let n = String.length s in
      let k = if n = 0 then 0 else k mod (n + 1) in
      let buf = Bytes.of_string s in
      let ctx = Md5.init () in
      Md5.update ctx buf 0 k;
      Md5.update ctx buf k (n - k);
      Md5.final ctx = Md5.digest_string s)

let test_random_against_fixture () =
  (* A deterministic pseudo-random 64KB buffer's digest, pinned so MD5
     regressions are caught even where RFC vectors would pass. *)
  let r = Prng.create 0x5EED_CAFEL in
  let data = Prng.bytes r 65536 in
  let d = Md5.to_hex (Md5.digest_bytes data) in
  Alcotest.(check int) "hex length" 32 (String.length d);
  (* Self-consistency: recomputing from the same seed gives the same
     digest. *)
  let r2 = Prng.create 0x5EED_CAFEL in
  let data2 = Prng.bytes r2 65536 in
  Alcotest.(check string) "stable" d (Md5.to_hex (Md5.digest_bytes data2))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graft_md5"
    [
      ( "md5",
        [
          Alcotest.test_case "RFC 1321 vectors" `Quick test_rfc_vectors;
          Alcotest.test_case "incremental" `Quick test_incremental_matches_oneshot;
          Alcotest.test_case "padding boundaries" `Quick test_block_boundary_lengths;
          Alcotest.test_case "bad range" `Quick test_update_bad_range;
          Alcotest.test_case "million a" `Quick test_million_a;
          Alcotest.test_case "to_hex" `Quick test_to_hex;
          Alcotest.test_case "random fixture" `Quick test_random_against_fixture;
        ] );
      ( "properties",
        qc
          [
            prop_digest_is_16_bytes;
            prop_deterministic;
            prop_injective_smoke;
            prop_split_point_irrelevant;
          ] );
    ]
