# Tcl-like graft script.
# Run: dune exec bin/graftkit.exe -- script examples/grafts/fizzbuzz.tcl
proc classify {n} {
  if {$n % 15 == 0} { return fizzbuzz }
  if {$n % 3 == 0} { return fizz }
  if {$n % 5 == 0} { return buzz }
  return $n
}
for {set i 1} {$i <= 15} {incr i} {
  puts [classify $i]
}
